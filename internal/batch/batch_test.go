package batch_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bba/internal/abtest"
	"bba/internal/batch"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/metrics"
)

func testGroups(t *testing.T) []abtest.Group {
	t.Helper()
	// Span the algorithm families: the paired BBA arms the campaigns run,
	// a capacity-seeded estimator, and the registry rivals.
	gs, err := abtest.Groups("Control", "Rmin Always", "BBA-0", "BBA-1", "BBA-2", "BBA-Others", "BOLA", "Hybrid")
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func testCatalog(t *testing.T) *media.Catalog {
	t.Helper()
	c, err := media.NewCatalog(6, media.DefaultLadder(), 99)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testDraws produces n randomized paired draws: users from every diurnal
// window across several days, each with its own trace and fault seed.
func testDraws(t *testing.T, catalog *media.Catalog, n int, seed int64) []batch.Draw {
	t.Helper()
	draws := make([]batch.Draw, n)
	for off := range draws {
		rng := rand.New(rand.NewSource(seed + int64(off)))
		u := abtest.DrawUser(abtest.PopulationConfig{}, off%metrics.WindowsPerDay, off/metrics.WindowsPerDay, rng)
		draws[off] = batch.Draw{User: u, Video: u.Pick(catalog), Fseed: seed*1000 + int64(off)*7 + 1}
	}
	return draws
}

// scalarReference plays every draw through the scalar harness.
func scalarReference(t *testing.T, draws []batch.Draw, groups []abtest.Group, fcfg *faults.ScheduleConfig) [][]metrics.Session {
	t.Helper()
	want := make([][]metrics.Session, len(draws))
	for off, d := range draws {
		ms, err := abtest.PlayUser(context.Background(), d.User, d.Video, groups, fcfg, d.Fseed, nil)
		if err != nil {
			t.Fatalf("scalar draw %d: %v", off, err)
		}
		want[off] = ms
	}
	return want
}

// runBatch executes the draws through a Runner and collects the folds.
func runBatch(t *testing.T, r *batch.Runner, draws []batch.Draw) [][]metrics.Session {
	t.Helper()
	got := make([][]metrics.Session, len(draws))
	drawNext, foldNext := 0, 0
	err := r.RunShard(context.Background(), len(draws),
		func(off int) (batch.Draw, error) {
			if off != drawNext {
				t.Errorf("draw called with off %d, want %d", off, drawNext)
			}
			drawNext++
			return draws[off], nil
		},
		func(off int, ms []metrics.Session) error {
			if off != foldNext {
				t.Errorf("fold called with off %d, want %d", off, foldNext)
			}
			foldNext++
			got[off] = append([]metrics.Session(nil), ms...)
			return nil
		})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if foldNext != len(draws) {
		t.Fatalf("folded %d draws, want %d", foldNext, len(draws))
	}
	return got
}

// TestRunShardMatchesScalar is the kernel's equivalence quickcheck: over
// randomized (user, trace, fault-weather) draws, batch execution must
// reproduce the scalar harness's metrics.Session values exactly — every
// field, including the float metrics, compared with ==.
func TestRunShardMatchesScalar(t *testing.T) {
	groups := testGroups(t)
	catalog := testCatalog(t)
	fcfg := faults.DefaultScheduleConfig()
	cases := []struct {
		name  string
		fcfg  *faults.ScheduleConfig
		width int
		seed  int64
	}{
		{"clean_width1", nil, 1, 41},
		{"clean_width3", nil, 3, 42},
		{"faults_width5", &fcfg, 5, 43},
		{"faults_wider_than_shard", &fcfg, 64, 44},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 30
			draws := testDraws(t, catalog, n, tc.seed)
			want := scalarReference(t, draws, groups, tc.fcfg)

			retired := 0
			r := batch.NewRunner(batch.Config{
				Groups:   groups,
				Faults:   tc.fcfg,
				Width:    tc.width,
				OnRetire: func() { retired++ },
			})
			got := runBatch(t, r, draws)

			for off := range draws {
				for gi, g := range groups {
					if got[off][gi] != want[off][gi] {
						t.Errorf("draw %d group %s:\n batch  %+v\n scalar %+v", off, g.Name, got[off][gi], want[off][gi])
					}
				}
			}
			if want := n * len(groups); retired != want {
				t.Errorf("OnRetire fired %d times, want %d", retired, want)
			}
		})
	}
}

// TestRunnerReuseAcrossShards pins that a Runner's recycled lane arenas and
// shared plan cache carry no state between shards: the second shard of a
// reused Runner matches a fresh Runner's output exactly.
func TestRunnerReuseAcrossShards(t *testing.T) {
	groups := testGroups(t)
	catalog := testCatalog(t)
	fcfg := faults.DefaultScheduleConfig()
	first := testDraws(t, catalog, 12, 7)
	second := testDraws(t, catalog, 12, 8)

	reused := batch.NewRunner(batch.Config{Groups: groups, Faults: &fcfg, Width: 4})
	runBatch(t, reused, first)
	got := runBatch(t, reused, second)

	fresh := batch.NewRunner(batch.Config{Groups: groups, Faults: &fcfg, Width: 4})
	want := runBatch(t, fresh, second)

	for off := range second {
		for gi, g := range groups {
			if got[off][gi] != want[off][gi] {
				t.Errorf("draw %d group %s: reused Runner %+v, fresh Runner %+v", off, g.Name, got[off][gi], want[off][gi])
			}
		}
	}
}

// TestRunShardErrorRecovery checks that an aborted shard (draw error, fold
// error, cancelled context) leaves the Runner reusable and correct.
func TestRunShardErrorRecovery(t *testing.T) {
	groups := testGroups(t)
	catalog := testCatalog(t)
	draws := testDraws(t, catalog, 10, 21)
	boom := errors.New("boom")
	r := batch.NewRunner(batch.Config{Groups: groups, Width: 3})

	err := r.RunShard(context.Background(), len(draws),
		func(off int) (batch.Draw, error) {
			if off == 4 {
				return batch.Draw{}, boom
			}
			return draws[off], nil
		},
		func(int, []metrics.Session) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("draw error not propagated: %v", err)
	}

	err = r.RunShard(context.Background(), len(draws),
		func(off int) (batch.Draw, error) { return draws[off], nil },
		func(off int, _ []metrics.Session) error {
			if off == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("fold error not propagated: %v", err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	err = r.RunShard(cancelled, len(draws),
		func(off int) (batch.Draw, error) { return draws[off], nil },
		func(int, []metrics.Session) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not propagated: %v", err)
	}

	// After all three aborts the Runner must still produce exact results.
	got := runBatch(t, r, draws)
	want := scalarReference(t, draws, groups, nil)
	for off := range draws {
		for gi, g := range groups {
			if got[off][gi] != want[off][gi] {
				t.Errorf("post-abort draw %d group %s: %+v, want %+v", off, g.Name, got[off][gi], want[off][gi])
			}
		}
	}
}
