package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// QueueConfig bounds the shipper's frame queue.
type QueueConfig struct {
	// MemFrames is the in-memory FIFO capacity (default 256 frames).
	MemFrames int
	// SpillDir, when non-empty, receives overflow frames as on-disk
	// segment files; empty disables spilling, so overflow drops.
	SpillDir string
	// MaxSpillBytes bounds the on-disk spill (default 32 MiB). Beyond it
	// the drop policy applies.
	MaxSpillBytes int64
	// DropOldest selects the drop policy when both memory and spill are
	// exhausted: false (default) drops the incoming frame — the newest
	// data loses, preserving the oldest backlog; true evicts from the
	// front instead — the backlog loses, preserving fresh data. Disk
	// eviction is per-segment, so DropOldest under spill sheds frames in
	// segment-sized batches.
	DropOldest bool
}

func (c *QueueConfig) applyDefaults() {
	if c.MemFrames <= 0 {
		c.MemFrames = 256
	}
	if c.MaxSpillBytes <= 0 {
		c.MaxSpillBytes = 32 << 20
	}
}

// QueueStats counts queue activity. Dropped is the explicit loss account:
// every frame the pipeline gave up on is in it, nothing disappears
// silently.
type QueueStats struct {
	Pushed  int64
	Popped  int64
	Dropped int64
	// Spilled counts frames written to disk (cumulative).
	Spilled int64
	// Depth is the current frame count across memory and disk.
	Depth int64
	// SpillBytes is the current on-disk byte count.
	SpillBytes int64
}

// ErrQueueFull reports a reliable push that found no room in memory or
// spill. Reliable frames are never dropped silently — the caller decides
// whether that is fatal.
var ErrQueueFull = errors.New("collect: queue full")

// errQueueClosed reports Push after Close.
var errQueueClosed = errors.New("collect: queue closed")

// queue is a bounded FIFO of encoded frames: an in-memory ring backed by
// on-disk segment files, after the xrootd-monitoring-shoveler's
// memory-then-disk confirmation queue. Push never blocks; Pop blocks until
// a frame or Close. Safe for concurrent use.
//
// FIFO is preserved across the spill boundary: memory holds the oldest
// frames; once any disk segment exists, new pushes go to disk and Pop
// refills memory from the oldest segment when memory drains.
type queue struct {
	cfg QueueConfig

	mu     sync.Mutex
	cond   *sync.Cond
	mem    [][]byte
	segs   []*spillSeg
	seq    int // next segment file number
	closed bool
	stats  QueueStats
}

// spillSeg is one on-disk segment of length-prefixed frames.
type spillSeg struct {
	path   string
	f      *os.File // open while the segment is the append tail
	frames int
	bytes  int64
}

// segMaxBytes rotates spill segments, bounding how much one Pop refill
// reads and how coarse DropOldest eviction is.
const segMaxBytes = 1 << 20

func newQueue(cfg QueueConfig) *queue {
	cfg.applyDefaults()
	q := &queue{cfg: cfg}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues an encoded frame, copying it. Best-effort frames
// (reliable=false) are dropped per policy when the queue is exhausted and
// the drop is counted; reliable frames return ErrQueueFull instead.
// The returned bool reports whether the frame was accepted.
func (q *queue) Push(frame []byte, reliable bool) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, errQueueClosed
	}
	// Memory is only for the oldest prefix: once anything is on disk,
	// later frames must follow it to disk to stay FIFO.
	if len(q.segs) == 0 && len(q.mem) < q.cfg.MemFrames {
		q.memPush(frame)
		return true, nil
	}
	if q.cfg.SpillDir != "" {
		if err := q.spill(frame); err == nil {
			q.stats.Pushed++
			q.stats.Depth++
			q.cond.Signal()
			return true, nil
		} else if !errors.Is(err, ErrQueueFull) {
			return false, err
		}
	}
	// Exhausted: apply the drop policy.
	if reliable {
		return false, ErrQueueFull
	}
	if q.cfg.DropOldest {
		q.evictOldest()
		if len(q.segs) == 0 && len(q.mem) < q.cfg.MemFrames {
			q.memPush(frame)
			return true, nil
		}
		if q.cfg.SpillDir != "" {
			if err := q.spill(frame); err == nil {
				q.stats.Pushed++
				q.stats.Depth++
				q.cond.Signal()
				return true, nil
			}
		}
	}
	q.stats.Dropped++
	return false, nil
}

// memPush appends to the in-memory ring (caller holds mu).
func (q *queue) memPush(frame []byte) {
	q.mem = append(q.mem, append([]byte(nil), frame...))
	q.stats.Pushed++
	q.stats.Depth++
	q.cond.Signal()
}

// evictOldest drops the oldest queued data to make room (caller holds mu):
// the front memory frame, or — when memory is empty — the oldest disk
// segment wholesale.
func (q *queue) evictOldest() {
	if len(q.mem) > 0 {
		q.mem = q.mem[1:]
		q.stats.Dropped++
		q.stats.Depth--
		return
	}
	if len(q.segs) > 0 {
		seg := q.segs[0]
		q.segs = q.segs[1:]
		if seg.f != nil {
			seg.f.Close()
		}
		os.Remove(seg.path)
		q.stats.Dropped += int64(seg.frames)
		q.stats.Depth -= int64(seg.frames)
		q.stats.SpillBytes -= seg.bytes
	}
}

// spill appends the frame to the tail segment, rotating at segMaxBytes.
// Caller holds mu.
func (q *queue) spill(frame []byte) error {
	need := int64(4 + len(frame))
	if q.stats.SpillBytes+need > q.cfg.MaxSpillBytes {
		return ErrQueueFull
	}
	tail := q.tailSeg()
	if tail == nil || tail.f == nil || tail.bytes+need > segMaxBytes {
		f, err := os.CreateTemp(q.cfg.SpillDir, fmt.Sprintf("spill-%06d-*.q", q.seq))
		if err != nil {
			return fmt.Errorf("collect: spill segment: %w", err)
		}
		q.seq++
		if tail != nil && tail.f != nil {
			tail.f.Close()
			tail.f = nil
		}
		tail = &spillSeg{path: f.Name(), f: f}
		q.segs = append(q.segs, tail)
	}
	var lp [4]byte
	binary.LittleEndian.PutUint32(lp[:], uint32(len(frame)))
	if _, err := tail.f.Write(lp[:]); err != nil {
		return fmt.Errorf("collect: spill write: %w", err)
	}
	if _, err := tail.f.Write(frame); err != nil {
		return fmt.Errorf("collect: spill write: %w", err)
	}
	tail.frames++
	tail.bytes += need
	q.stats.SpillBytes += need
	q.stats.Spilled++
	return nil
}

func (q *queue) tailSeg() *spillSeg {
	if len(q.segs) == 0 {
		return nil
	}
	return q.segs[len(q.segs)-1]
}

// Pop blocks until a frame is available or the queue closes; ok=false
// means closed and drained.
func (q *queue) Pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.mem) == 0 && len(q.segs) > 0 {
			if err := q.refill(); err != nil {
				// A damaged spill segment loses its frames; count them
				// dropped rather than wedging the queue.
				seg := q.segs[0]
				q.segs = q.segs[1:]
				q.stats.Dropped += int64(seg.frames)
				q.stats.Depth -= int64(seg.frames)
				q.stats.SpillBytes -= seg.bytes
				os.Remove(seg.path)
				continue
			}
		}
		if len(q.mem) > 0 {
			frame := q.mem[0]
			q.mem = q.mem[1:]
			q.stats.Popped++
			q.stats.Depth--
			return frame, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// refill loads the oldest disk segment into memory. Caller holds mu.
func (q *queue) refill() error {
	seg := q.segs[0]
	if seg.f != nil {
		seg.f.Close()
		seg.f = nil
	}
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	frames := make([][]byte, 0, seg.frames)
	for off := 0; off+4 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n > len(data) {
			return fmt.Errorf("collect: corrupt spill segment %s", filepath.Base(seg.path))
		}
		frames = append(frames, data[off:off+n])
		off += n
	}
	if len(frames) != seg.frames {
		return fmt.Errorf("collect: spill segment %s holds %d frames, recorded %d",
			filepath.Base(seg.path), len(frames), seg.frames)
	}
	q.segs = q.segs[1:]
	q.stats.SpillBytes -= seg.bytes
	os.Remove(seg.path)
	q.mem = append(q.mem, frames...)
	return nil
}

// Len returns the current queued frame count.
func (q *queue) Len() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats.Depth
}

// Stats returns a snapshot of the queue counters.
func (q *queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Close wakes blocked Pops; in-memory frames remain poppable until
// drained. The disk backlog is discarded: spill segments are closed and
// removed, their frames counted in Dropped — after Close no sender will
// drain them, and .q files leaking across restarts is worse than honest,
// counted loss. Shipper.Close flushes the queue before closing it, so the
// normal shutdown path has nothing on disk to lose.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, seg := range q.segs {
		if seg.f != nil {
			seg.f.Close()
		}
		os.Remove(seg.path)
		q.stats.Dropped += int64(seg.frames)
		q.stats.Depth -= int64(seg.frames)
		q.stats.SpillBytes -= seg.bytes
	}
	q.segs = nil
	q.cond.Broadcast()
}
