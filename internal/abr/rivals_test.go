package abr

// Closed-form expectation tests for the arena rivals: BOLA's derived
// thresholds are pinned against the paper's V/γ design equations, the
// throughput rule against the exact harmonic mean, and the hybrid against
// its two component regimes. Constant-trace simulations then pin the
// steady states those closed forms predict.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/units"
)

// TestBOLAThresholdsClosedForm recomputes the V/γ design by hand on a CBR
// title and pins the derived rung boundaries against the implementation:
// the bottom boundary sits at QLow, the top at QHighFraction·BufferMax, and
// the interior follows Q_{i,i+1} = V·(α_i + γ) with strictly ascending
// levels (BOLA is a chunk map).
func TestBOLAThresholdsClosedForm(t *testing.T) {
	s := cbrStream(t)
	st := stateAt(0, -1, 0)
	b := NewBOLA()
	got := b.Thresholds(st, s)
	m := len(s.Ladder())
	if len(got) != m-1 {
		t.Fatalf("got %d thresholds for a %d-rung ladder", len(got), m)
	}

	// Independent recompute of the design equations.
	size := make([]float64, m)
	util := make([]float64, m)
	for i := 0; i < m; i++ {
		size[i] = float64(s.NominalChunkSize(i))
		util[i] = math.Log(size[i] / size[0])
	}
	alpha := func(i int) float64 {
		return (size[i+1]*util[i] - size[i]*util[i+1]) / (size[i+1] - size[i])
	}
	qLow, qHigh := 10.0, 0.9*240.0
	v := (qHigh - qLow) / (alpha(m-2) - alpha(0))
	gamma := qLow/v - alpha(0)
	for i := 0; i < m-1; i++ {
		want := v * (alpha(i) + gamma)
		if math.Abs(got[i]-want) > 1e-6 {
			t.Errorf("threshold[%d] = %.6f, want %.6f", i, got[i], want)
		}
	}

	// The two anchors of the design.
	if math.Abs(got[0]-qLow) > 1e-6 {
		t.Errorf("bottom threshold = %.6f, want QLow = %v", got[0], qLow)
	}
	if math.Abs(got[m-2]-qHigh) > 1e-6 {
		t.Errorf("top threshold = %.6f, want 0.9·BufferMax = %v", got[m-2], qHigh)
	}
	for i := 1; i < m-1; i++ {
		if got[i] <= got[i-1] {
			t.Errorf("thresholds not ascending: [%d]=%.3f, [%d]=%.3f", i-1, got[i-1], i, got[i])
		}
	}
}

// TestBOLADecisionIsStepFunction sweeps the buffer and checks the argmax
// equals the rung the closed-form thresholds predict — monotone
// nondecreasing, R_min below QLow, R_max above QHigh.
func TestBOLADecisionIsStepFunction(t *testing.T) {
	s := cbrStream(t)
	b := NewBOLA()
	thr := b.Thresholds(stateAt(0, -1, 0), s)
	top := len(s.Ladder()) - 1
	prevDecision := 0
	for q := time.Duration(0); q <= 240*time.Second; q += 250 * time.Millisecond {
		got := b.Next(stateAt(q, 3, 10), s)
		want, ambiguous := 0, false
		for i, boundary := range thr {
			if math.Abs(q.Seconds()-boundary) < 1e-9 {
				// Exactly on a boundary the two rungs' scores tie up to
				// floating-point noise; either side is correct.
				ambiguous = true
			}
			if q.Seconds() > boundary {
				want = i + 1
			}
		}
		if ambiguous {
			continue
		}
		if got != want {
			t.Fatalf("Q=%v: decision %d, closed form predicts %d", q, got, want)
		}
		if got < prevDecision {
			t.Fatalf("Q=%v: decision fell from %d to %d on a rising buffer", q, prevDecision, got)
		}
		prevDecision = got
	}
	if got := b.Next(stateAt(0, -1, 0), s); got != 0 {
		t.Errorf("empty buffer: decision %d, want R_min", got)
	}
	if got := b.Next(stateAt(240*time.Second, top, 50), s); got != top {
		t.Errorf("full buffer: decision %d, want R_max (%d)", got, top)
	}
}

// TestBOLADegenerateLadders: one rung always picks it; two rungs use the
// fallback gain without dividing by zero.
func TestBOLADegenerateLadders(t *testing.T) {
	one := promotedStream(t, 5000*units.Kbps) // only the top rung survives
	b := NewBOLA()
	if got := b.Next(stateAt(50*time.Second, -1, 0), one); got != 0 {
		t.Errorf("single-rung ladder: decision %d", got)
	}
	two := promotedStream(t, 4300*units.Kbps) // 4300, 5000
	b2 := NewBOLA()
	for q := time.Duration(0); q <= 240*time.Second; q += time.Second {
		got := b2.Next(stateAt(q, 0, 1), two)
		if got < 0 || got > 1 {
			t.Fatalf("two-rung ladder: decision %d at Q=%v", got, q)
		}
	}
}

// promotedStream is a CBR stream with the footnote-3 R_min promotion
// applied — the way short ladders arise in practice.
func promotedStream(t *testing.T, rmin units.BitRate) Stream {
	t.Helper()
	full := cbrStream(t)
	return NewStream(full.Video(), rmin)
}

// constantSession drives an algorithm through a session against a constant
// capacity, using the same buffer dynamics as the invariant harness, and
// returns the decision sequence.
func constantSession(t *testing.T, alg Algorithm, s Stream, capacity units.BitRate, chunks int) []int {
	t.Helper()
	const bufferMax = 240 * time.Second
	buffer := time.Duration(0)
	prev := -1
	var lastDl time.Duration
	var lastTP units.BitRate
	decisions := make([]int, 0, chunks)
	for k := 0; k < chunks; k++ {
		st := State{
			Now:            time.Duration(k) * 4 * time.Second,
			Buffer:         buffer,
			BufferMax:      bufferMax,
			PrevIndex:      prev,
			NextChunk:      k,
			LastDownload:   lastDl,
			LastThroughput: lastTP,
		}
		d := alg.Next(st, s)
		if d < 0 || d >= len(s.Ladder()) {
			t.Fatalf("chunk %d: decision %d outside the ladder", k, d)
		}
		decisions = append(decisions, d)
		size := s.ChunkSize(d, k%s.NumChunks())
		lastDl = capacity.DurationFor(size)
		lastTP = capacity
		buffer += 4*time.Second - lastDl
		if buffer < 0 {
			buffer = 0
		}
		if buffer > bufferMax {
			buffer = bufferMax
		}
		prev = d
	}
	return decisions
}

// TestBOLAConstantTraceExpectation pins the steady states the threshold
// design predicts: with ample capacity the buffer pins at B_max above the
// top threshold, so BOLA streams R_max; with capacity between two rungs the
// buffer equilibrates at their boundary, so BOLA oscillates between exactly
// those two rungs.
func TestBOLAConstantTraceExpectation(t *testing.T) {
	s := cbrStream(t)
	top := len(s.Ladder()) - 1

	ample := constantSession(t, NewBOLA(), s, 100*units.Mbps, 400)
	for k, d := range ample[200:] {
		if d != top {
			t.Fatalf("ample capacity, chunk %d: decision %d, want steady R_max", 200+k, d)
		}
	}

	// 2 Mb/s sits between the 1750 and 2350 kb/s rungs (indexes 5, 6).
	mid := constantSession(t, NewBOLA(), s, 2*units.Mbps, 400)
	seen := map[int]bool{}
	for k, d := range mid[200:] {
		if d != 5 && d != 6 {
			t.Fatalf("2 Mb/s capacity, chunk %d: decision %d, want oscillation between rungs 5 and 6", 200+k, d)
		}
		seen[d] = true
	}
	if !seen[5] || !seen[6] {
		t.Errorf("2 Mb/s capacity: steady decisions %v, want both boundary rungs", seen)
	}
}

// TestSmoothThroughputClosedForm pins the selection rule exactly: the
// harmonic mean of the window, discounted by the safety factor, looked up
// on the ladder.
func TestSmoothThroughputClosedForm(t *testing.T) {
	s := cbrStream(t)
	l := s.Ladder()

	// Constant samples: harmonic mean is the sample, so the pick is
	// HighestAtMost(0.9 × 3000) = HighestAtMost(2700) = 2350 (index 6).
	c := NewSmoothThroughput()
	var got int
	for k := 0; k < 8; k++ {
		st := stateAt(60*time.Second, got, k)
		if k == 0 {
			st = stateAt(0, -1, 0)
		} else {
			st.LastThroughput = 3000 * units.Kbps
		}
		got = c.Next(st, s)
	}
	if want := l.HighestAtMost(2700 * units.Kbps); got != want || l[got] != 2350*units.Kbps {
		t.Errorf("constant 3 Mb/s: decision %d (%v), want %d (2350 kb/s)", got, l[got], want)
	}

	// Mixed window: samples 1 and 3 Mb/s have harmonic mean 1.5 Mb/s
	// (the arithmetic mean would say 2), so the pick is
	// HighestAtMost(0.9 × 1500) = HighestAtMost(1350) = 1050.
	c2 := NewSmoothThroughput()
	c2.Observe(1 * units.Mbps)
	c2.Observe(3 * units.Mbps)
	st := stateAt(60*time.Second, 4, 5)
	if got := c2.Next(st, s); l[got] != 1050*units.Kbps {
		t.Errorf("mixed window: decision %d (%v), want the 1050 kb/s rung", got, l[got])
	}

	// The window slides: after Window samples of 3 Mb/s the old 1 Mb/s
	// sample must be gone and the pick recovers to 2350.
	c3 := NewSmoothThroughput()
	c3.Observe(1 * units.Mbps)
	for i := 0; i < c3.Window; i++ {
		c3.Observe(3 * units.Mbps)
	}
	if got := c3.Next(stateAt(60*time.Second, 4, 9), s); l[got] != 2350*units.Kbps {
		t.Errorf("slid window: decision %d (%v), want the 2350 kb/s rung", got, l[got])
	}
}

// TestSmoothThroughputSeedAndPanic: seeded history drives the first pick;
// the panic floor overrides everything.
func TestSmoothThroughputSeedAndPanic(t *testing.T) {
	s := cbrStream(t)
	l := s.Ladder()
	c := NewSmoothThroughput()
	c.SeedCapacity(3 * units.Mbps)
	if got := c.Next(stateAt(0, -1, 0), s); l[got] != 2350*units.Kbps {
		t.Errorf("seeded first pick = %d (%v), want the 2350 kb/s rung", got, l[got])
	}
	if got := c.Next(stateAt(5*time.Second, 6, 1), s); got != 0 {
		t.Errorf("panic pick = %d, want R_min", got)
	}
	// No history, no samples: only R_min is safe.
	if got := NewSmoothThroughput().Next(stateAt(0, -1, 0), s); got != 0 {
		t.Errorf("uninformed first pick = %d, want R_min", got)
	}
	// Constant-trace steady state: exactly the closed-form rung, forever.
	// The first few chunks ride the panic floor while the buffer builds
	// past PanicBuffer at ~3.7 s per R_min chunk.
	steady := constantSession(t, NewSmoothThroughput(), s, 3*units.Mbps, 100)
	for k, d := range steady[4:] {
		if l[d] != 2350*units.Kbps {
			t.Fatalf("constant trace, chunk %d: decision %d, want the 2350 kb/s rung", 4+k, d)
		}
	}
}

// TestHybridRegimes pins the handover: below SwitchBuffer the hybrid
// decides exactly like the throughput rule fed the same samples; at and
// above it, exactly like BOLA.
func TestHybridRegimes(t *testing.T) {
	s := cbrStream(t)
	h := NewHybrid()
	tput := NewSmoothThroughput()
	bola := NewBOLA()

	// Low-buffer regime, with warm estimators on both sides.
	low := stateAt(6*time.Second, 2, 4)
	low.LastThroughput = 2 * units.Mbps
	tput.Observe(low.LastThroughput)
	if got, want := h.Next(low, s), s.Ladder().HighestAtMost(tput.Estimate()); got != want {
		t.Errorf("low buffer: hybrid chose %d, throughput rule %d", got, want)
	}

	// High-buffer regime: BOLA decides; the throughput estimate is
	// irrelevant however high it is.
	high := stateAt(100*time.Second, 2, 5)
	high.LastThroughput = 50 * units.Mbps
	if got, want := h.Next(high, s), bola.Next(high, s); got != want {
		t.Errorf("high buffer: hybrid chose %d, BOLA %d", got, want)
	}

	// Uninformed cold start below the handover: R_min.
	if got := NewHybrid().Next(stateAt(0, -1, 0), s); got != 0 {
		t.Errorf("cold start = %d, want R_min", got)
	}

	// Ample constant capacity: the hybrid must reach and hold R_max just
	// like its BOLA leg (the throughput leg only runs the first seconds).
	steady := constantSession(t, NewHybrid(), s, 100*units.Mbps, 400)
	top := len(s.Ladder()) - 1
	for k, d := range steady[200:] {
		if d != top {
			t.Fatalf("ample capacity, chunk %d: decision %d, want steady R_max", 200+k, d)
		}
	}
}

// The rivals share the invariant harness: ladder-validity on random
// sessions (checked by driveSession itself) plus each design's own floor.
func TestQuickInvariantsRivals(t *testing.T) {
	t.Run("BOLA", func(t *testing.T) {
		f := func(seed int64) bool {
			alg := NewBOLA()
			ok := true
			driveSession(t, seed, alg, func(step int, st State, decision int) {
				// Below the bottom anchor BOLA must stream R_min.
				if st.Buffer < alg.QLow && decision != 0 {
					ok = false
				}
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("SmoothThroughput", func(t *testing.T) {
		f := func(seed int64) bool {
			alg := NewSmoothThroughput()
			ok := true
			driveSession(t, seed, alg, func(step int, st State, decision int) {
				if st.PrevIndex >= 0 && st.Buffer < alg.PanicBuffer && decision != 0 {
					ok = false
				}
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("Hybrid", func(t *testing.T) {
		f := func(seed int64) bool {
			alg := NewHybrid()
			ok := true
			driveSession(t, seed, alg, func(step int, st State, decision int) {
				// Ladder bounds come from the harness; the hybrid's own
				// promise is R_min when uninformed below the handover.
				if st.PrevIndex < 0 && st.Buffer < alg.SwitchBuffer && decision != 0 {
					ok = false
				}
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
}
