package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bba/internal/dash"
	"bba/internal/media"
	"bba/internal/soak"
	"bba/internal/telemetry"
)

// TestSoakOneShot runs the one-shot gate end to end: two tiny clean
// cycles, metrics endpoint live while the daemon runs, journal on disk
// after it exits.
func TestSoakOneShot(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "soak.jsonl")
	ready := make(chan string, 1)
	cfg := soakConfig{
		cycles:      2,
		interval:    0,
		metricsAddr: "127.0.0.1:0",
		journal:     journal,
		onReady:     func(addr string) { ready <- addr },
		soak: soak.Config{
			Sessions:       2,
			Seed:           21,
			Watch:          1500 * time.Millisecond,
			ChunkMS:        250,
			ShapeKbps:      20000,
			Algorithms:     []string{"BBA-0", "Control"},
			DisableFaults:  true,
			CollectorCheck: true,
		},
	}

	done := make(chan error, 1)
	probed := make(chan error, 1)
	go func() {
		addr := <-ready
		probed <- probeEndpoints(addr)
	}()
	go func() { done <- runSoak(context.Background(), cfg) }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runSoak: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("soak one-shot did not finish")
	}
	if err := <-probed; err != nil {
		t.Fatalf("metrics endpoints: %v", err)
	}

	// The journal holds the daemon's own soak_cycle verdicts.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	cyclesSeen := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		e, ok := telemetry.ParseJSONL([]byte(line + "\n")) // strict parse wants the full canonical line
		if !ok {
			t.Fatalf("journal line does not parse: %q", line)
		}
		if e.Kind == telemetry.SoakCycle {
			cyclesSeen++
			if e.Label != "pass" {
				t.Errorf("cycle %d verdict %q, want pass", e.Chunk, e.Label)
			}
		}
	}
	if cyclesSeen != 2 {
		t.Errorf("journal records %d cycles, want 2", cyclesSeen)
	}
}

// probeEndpoints hits /healthz and /metrics while the daemon runs.
func probeEndpoints(addr string) error {
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "soak_cycles_total") {
			return fmt.Errorf("/metrics missing soak_cycles_total:\n%s", body)
		}
	}
	return nil
}

// TestSoakOneShotFailureExitsNonZero points the gate at a dead origin:
// every cycle fails and runSoak must return an error.
func TestSoakOneShotFailureExitsNonZero(t *testing.T) {
	cfg := soakConfig{
		cycles:      1,
		metricsAddr: "",
		soak: soak.Config{
			Sessions:   1,
			Watch:      time.Second,
			BaseURL:    "http://127.0.0.1:1",
			Algorithms: []string{"Control"},
		},
	}
	err := runSoak(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "violated invariants") {
		t.Fatalf("runSoak = %v, want invariant-violation error", err)
	}
}

// TestLoadMode runs a miniature ramp against an in-process origin and
// checks the JSON artifact.
func TestLoadMode(t *testing.T) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "loadmode",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: 500 * time.Millisecond,
		NumChunks:     16,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := dash.StartOrigin("127.0.0.1:0", srv, dash.OriginConfig{ShutdownGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close(context.Background())

	out := filepath.Join(t.TempDir(), "ramp.json")
	err = runLoad(context.Background(), soak.LoadConfig{
		URL:        origin.URL(),
		Target:     8,
		Step:       4,
		Dwell:      150 * time.Millisecond,
		KneeFactor: 1000,
	}, out)
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res soak.LoadResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Steps) != 2 || res.MaxClients != 8 {
		t.Fatalf("unexpected ramp result: %+v", res)
	}
}

func TestSplitAlgs(t *testing.T) {
	if got := splitAlgs(""); got != nil {
		t.Fatalf("splitAlgs(\"\") = %v, want nil", got)
	}
	got := splitAlgs("BBA-1, BBA-2 ,,BOLA")
	want := []string{"BBA-1", "BBA-2", "BOLA"}
	if len(got) != len(want) {
		t.Fatalf("splitAlgs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitAlgs = %v, want %v", got, want)
		}
	}
}
