// Package qoe scores sessions with the linear quality-of-experience model
// that the literature around the paper settled on (Dobrian et al. [7],
// Krishnan and Sitaraman [11], and the models later used to train and
// evaluate ABR systems): per-second video quality, minus a rebuffering
// penalty, minus a smoothness penalty for rate switches.
//
//	QoE = Σ_k q(R_k)·V − μ·stall_seconds − τ·Σ_k |q(R_{k+1}) − q(R_k)|
//
// The paper itself deliberately focuses on the rebuffer/rate trade-off
// ("the buffer-based approach can serve as a foundation when considering
// other metrics"); this package is that consideration: it folds the three
// axes the paper measures separately into one comparable score.
package qoe

import (
	"math"

	"bba/internal/player"
)

// Quality maps a video rate in kb/s to perceptual quality units.
type Quality func(kbps float64) float64

// LinearQuality scores quality proportionally to bitrate (q = rate/1000),
// the simplest published choice.
func LinearQuality(kbps float64) float64 { return kbps / 1000 }

// LogQuality scores with diminishing returns, q = log(rate/R_min-ish),
// reflecting that 1 Mb/s → 2 Mb/s matters more than 4 Mb/s → 5 Mb/s.
func LogQuality(kbps float64) float64 {
	if kbps <= 0 {
		return 0
	}
	return math.Log(kbps / 235)
}

// Weights parameterizes the linear model.
type Weights struct {
	// Quality maps bitrate to quality units (default LinearQuality).
	Quality Quality
	// RebufferPenalty is μ, quality units charged per stalled second.
	// The common choice pairs μ with the top quality (a stalled second
	// is as bad as a top-rate second is good).
	RebufferPenalty float64
	// SwitchPenalty is τ, quality units charged per unit of quality
	// change between consecutive chunks.
	SwitchPenalty float64
}

// Default returns the weight set most evaluations use: linear quality,
// μ = top-rate quality (5.0 for a 5 Mb/s ladder), τ = 1.
func Default() Weights {
	return Weights{Quality: LinearQuality, RebufferPenalty: 5, SwitchPenalty: 1}
}

// Score computes the session's total QoE and its three components.
func Score(res *player.Result, w Weights) Breakdown {
	if w.Quality == nil {
		w.Quality = LinearQuality
	}
	var b Breakdown
	var prevQ float64
	// Walk rates through the accessor so compact (SkipChunkRecords)
	// results score identically to fully-recorded ones.
	for i, n := 0, res.ChunkCount(); i < n; i++ {
		q := w.Quality(res.ChunkRateKbps(i))
		b.QualityTotal += q
		if i > 0 {
			b.SwitchTotal += math.Abs(q - prevQ)
		}
		prevQ = q
	}
	b.StallTotal = res.StallTime.Seconds()
	b.QoE = b.QualityTotal - w.RebufferPenalty*b.StallTotal - w.SwitchPenalty*b.SwitchTotal
	return b
}

// Breakdown is a scored session.
type Breakdown struct {
	// QoE is the total score.
	QoE float64
	// QualityTotal is Σ q(R_k) over chunks.
	QualityTotal float64
	// StallTotal is stalled seconds (unweighted).
	StallTotal float64
	// SwitchTotal is Σ |Δq| over adjacent chunks (unweighted).
	SwitchTotal float64
}

// PerHour normalizes the score by played time so sessions of different
// lengths compare.
func (b Breakdown) PerHour(res *player.Result) float64 {
	h := res.PlayHours()
	if h == 0 {
		return 0
	}
	return b.QoE / h
}
