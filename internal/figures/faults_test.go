package figures

import (
	"testing"

	"bba/internal/abtest"
)

// TestShapeOutageRobustness pins the figure's acceptance shape: for every
// outage shorter than the 240 s player buffer, both buffer-based
// algorithms rebuffer strictly less than the Control; past the buffer
// capacity the gap is allowed to close (everyone must freeze).
func TestShapeOutageRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~1300 sessions")
	}
	fig, err := OutageRobustness()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series count = %d, want Control/BBA-0/BBA-1", len(fig.Series))
	}
	ctl, bba0, bba1 := fig.Series[0], fig.Series[1], fig.Series[2]
	for i, p := range ctl.Points {
		// The last sweep point (300 s) exceeds the buffer capacity.
		if i == len(ctl.Points)-1 {
			continue
		}
		if bba0.Points[i].Y >= p.Y {
			t.Errorf("outage %s: BBA-0 rebuffer rate %.3f not strictly below Control %.3f",
				p.X, bba0.Points[i].Y, p.Y)
		}
		if bba1.Points[i].Y >= p.Y {
			t.Errorf("outage %s: BBA-1 rebuffer rate %.3f not strictly below Control %.3f",
				p.X, bba1.Points[i].Y, p.Y)
		}
	}
	// Rebuffer rates must not decrease as the outage lengthens (within a
	// series, longer outages can only hurt) — sanity on the sweep itself.
	for _, s := range fig.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last < first {
			t.Errorf("%s: rebuffer rate fell from %.3f to %.3f as outages lengthened", s.Name, first, last)
		}
	}
}

// TestExperimentConfigMatchesScales pins the exported config against the
// populations the cached weekend experiment actually runs.
func TestExperimentConfigMatchesScales(t *testing.T) {
	q := ExperimentConfig(Quick)
	if q.Seed != ExperimentSeed || q.Days != 2 || q.SessionsPerWindow != 80 {
		t.Errorf("quick config = %+v", q)
	}
	f := ExperimentConfig(Full)
	if f.Days != 3 || f.SessionsPerWindow != 160 {
		t.Errorf("full config = %+v", f)
	}
	if q.Faults != nil {
		t.Error("weekend experiment config must be clean by default")
	}
	var _ abtest.Config = q
}
