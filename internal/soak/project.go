package soak

import (
	"strconv"
	"strings"

	"bba/internal/telemetry"
)

// Projected is one event of the timing-stripped decision projection: the
// fields of a journal line that are a pure function of the seeds and the
// algorithm's decisions, with every wall-clock-derived field (at_ns,
// duration_ns, throughput, buffer and play positions) removed.
//
// Over real sockets the wall clock jitters with the scheduler, so full
// journals from two runs of the same seed differ byte-wise; the
// projection is what determinism means for the real-HTTP path — same
// seeds ⇒ the same sequence of requests, rates, switches and sizes. The
// e2e test pins exactly that across concurrent session waves.
type Projected struct {
	Kind          string
	Session       string
	Chunk         int
	RateIndex     int
	PrevRateIndex int
	Rate          int64
	Bytes         int64
	Label         string
}

// projectedKinds are the decision-record kinds the projection keeps.
// Buffer samples, reservoir reports and rebuffer boundaries are dropped:
// their very content is the wall clock. Retries and failovers are kept —
// they are decisions, deterministic whenever the fault weather is.
var projectedKinds = map[telemetry.Kind]bool{
	telemetry.SessionStart: true,
	telemetry.ChunkRequest: true,
	telemetry.RateSwitch:   true,
	telemetry.ChunkRetry:   true,
	telemetry.Failover:     true,
	telemetry.Degrade:      true,
	telemetry.Seek:         true,
	telemetry.SessionEnd:   true,
}

// Project reduces a captured journal to its decision projection.
func Project(events []telemetry.Event) []Projected {
	var out []Projected
	for _, e := range events {
		if !projectedKinds[e.Kind] {
			continue
		}
		out = append(out, Projected{
			Kind:          e.Kind.String(),
			Session:       e.Session,
			Chunk:         e.Chunk,
			RateIndex:     e.RateIndex,
			PrevRateIndex: e.PrevRateIndex,
			Rate:          int64(e.Rate),
			Bytes:         e.Bytes,
			Label:         e.Label,
		})
	}
	return out
}

// Render serializes a projection one line per event, for direct string
// comparison and readable test diffs.
func Render(p []Projected) string {
	var b strings.Builder
	for _, e := range p {
		b.WriteString(e.Kind)
		b.WriteByte(' ')
		b.WriteString(e.Session)
		b.WriteString(" chunk=")
		b.WriteString(strconv.Itoa(e.Chunk))
		b.WriteString(" rate_index=")
		b.WriteString(strconv.Itoa(e.RateIndex))
		b.WriteString(" prev=")
		b.WriteString(strconv.Itoa(e.PrevRateIndex))
		b.WriteString(" rate=")
		b.WriteString(strconv.FormatInt(e.Rate, 10))
		b.WriteString(" bytes=")
		b.WriteString(strconv.FormatInt(e.Bytes, 10))
		if e.Label != "" {
			b.WriteString(" label=")
			b.WriteString(strconv.Quote(e.Label))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
