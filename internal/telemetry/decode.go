package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"time"

	"bba/internal/units"
)

// ParseJSONL parses one canonical journal line (the exact bytes
// AppendJSONL produces, including the trailing newline) back into its
// Event. It is the strict inverse of the journal encoding: fixed field
// order, integer values, Go-quoted strings. ok is false for any line that
// deviates — reordered fields, whitespace, floats, missing newline — or
// whose kind name no Kind produces. A true return guarantees the round
// trip: AppendJSONL(nil, e) reproduces line byte for byte.
//
// The strictness is the point: the columnar archive uses ParseJSONL to
// decide whether a line can be stored as columns and losslessly
// re-rendered, falling back to verbatim raw bytes when it cannot.
func ParseJSONL(line []byte) (e Event, ok bool) {
	rest := line
	eat := func(prefix string) bool {
		if len(rest) < len(prefix) || string(rest[:len(prefix)]) != prefix {
			return false
		}
		rest = rest[len(prefix):]
		return true
	}
	str := func() (string, bool) {
		// Go-quoted string: find the closing quote, honoring escapes.
		if len(rest) == 0 || rest[0] != '"' {
			return "", false
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", false
		}
		s, err := strconv.Unquote(string(rest[:end+1]))
		if err != nil {
			return "", false
		}
		// Canonical quoting only: re-quoting must reproduce the bytes.
		if strconv.Quote(s) != string(rest[:end+1]) {
			return "", false
		}
		rest = rest[end+1:]
		return s, true
	}
	integer := func() (int64, bool) {
		i := 0
		if i < len(rest) && rest[i] == '-' {
			i++
		}
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		v, err := strconv.ParseInt(string(rest[:i]), 10, 64)
		if err != nil {
			return 0, false
		}
		// Reject non-canonical renderings ("-0", "007"): AppendInt never
		// produces them, and accepting them would break the round trip.
		if strconv.FormatInt(v, 10) != string(rest[:i]) {
			return 0, false
		}
		rest = rest[i:]
		return v, true
	}

	if !eat(`{"kind":"`) {
		return e, false
	}
	nameEnd := bytes.IndexByte(rest, '"')
	if nameEnd < 0 {
		return e, false
	}
	kind, kindOK := ParseKind(string(rest[:nameEnd]))
	if !kindOK {
		return e, false
	}
	e.Kind = kind
	rest = rest[nameEnd+1:]

	if !eat(`,"session":`) {
		return e, false
	}
	if e.Session, ok = str(); !ok {
		return e, false
	}
	for _, c := range intFields {
		if !eat(`,"` + c.Name + `":`) {
			return e, false
		}
		v, vok := integer()
		if !vok {
			return e, false
		}
		c.Set(&e, v)
	}
	if !eat(`,"label":`) {
		return e, false
	}
	if e.Label, ok = str(); !ok {
		return e, false
	}
	return e, eat("}\n") && len(rest) == 0
}

// IntColumn describes one integer journal field: its JSONL key and typed
// accessors. The archive's columnar encoder iterates IntColumns to turn a
// stream of Events into per-field columns and back without enumerating the
// Event struct anywhere else.
type IntColumn struct {
	// Name is the JSONL object key ("at_ns", "chunk", ...).
	Name string
	// Delta marks columns that are near-monotone in admission order
	// (session clocks, chunk indexes) and therefore delta-encode well.
	Delta bool
	Get   func(*Event) int64
	Set   func(*Event, int64)
}

// intFields lists every integer journal field in journal order — the order
// appendEvent emits them between "session" and "label". Keep the two in
// lockstep: the decoder test round-trips each Kind through
// AppendJSONL/ParseJSONL and fails on any divergence.
var intFields = []IntColumn{
	{Name: "at_ns", Delta: true,
		Get: func(e *Event) int64 { return int64(e.At) },
		Set: func(e *Event, v int64) { e.At = time.Duration(v) }},
	{Name: "chunk", Delta: true,
		Get: func(e *Event) int64 { return int64(e.Chunk) },
		Set: func(e *Event, v int64) { e.Chunk = int(v) }},
	{Name: "rate_index",
		Get: func(e *Event) int64 { return int64(e.RateIndex) },
		Set: func(e *Event, v int64) { e.RateIndex = int(v) }},
	{Name: "prev_rate_index",
		Get: func(e *Event) int64 { return int64(e.PrevRateIndex) },
		Set: func(e *Event, v int64) { e.PrevRateIndex = int(v) }},
	{Name: "rate_bps",
		Get: func(e *Event) int64 { return int64(e.Rate) },
		Set: func(e *Event, v int64) { e.Rate = units.BitRate(v) }},
	{Name: "bytes",
		Get: func(e *Event) int64 { return e.Bytes },
		Set: func(e *Event, v int64) { e.Bytes = v }},
	{Name: "duration_ns",
		Get: func(e *Event) int64 { return int64(e.Duration) },
		Set: func(e *Event, v int64) { e.Duration = time.Duration(v) }},
	{Name: "throughput_bps",
		Get: func(e *Event) int64 { return int64(e.Throughput) },
		Set: func(e *Event, v int64) { e.Throughput = units.BitRate(v) }},
	{Name: "buffer_ns",
		Get: func(e *Event) int64 { return int64(e.Buffer) },
		Set: func(e *Event, v int64) { e.Buffer = time.Duration(v) }},
	{Name: "played_ns",
		Get: func(e *Event) int64 { return int64(e.Played) },
		Set: func(e *Event, v int64) { e.Played = time.Duration(v) }},
	{Name: "reservoir_ns",
		Get: func(e *Event) int64 { return int64(e.Reservoir) },
		Set: func(e *Event, v int64) { e.Reservoir = time.Duration(v) }},
	{Name: "protection_ns",
		Get: func(e *Event) int64 { return int64(e.Protection) },
		Set: func(e *Event, v int64) { e.Protection = time.Duration(v) }},
}

// IntColumns returns the integer journal fields in journal order.
func IntColumns() []IntColumn { return intFields }

// GroupOfSession extracts the experiment group from a session label. The
// A/B harness stamps sessions "d<day>.w<window>.s<index>.<group>", so the
// group is the suffix after the last dot; labels without one (single
// sessions, ad-hoc tools) are their own group.
func GroupOfSession(session string) string {
	if i := strings.LastIndexByte(session, '.'); i >= 0 {
		return session[i+1:]
	}
	return session
}
