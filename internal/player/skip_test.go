package player

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/trace"
	"bba/internal/units"
)

// skipScenario is one (algorithm, weather, viewing) draw run through both
// recording modes.
type skipScenario struct {
	name   string
	seed   int64
	alg    string
	watch  time.Duration
	seeks  []Seek
	faulty bool
}

func runSkipScenario(t *testing.T, sc skipScenario, skip bool) *Result {
	t.Helper()
	s := vbrStream(t, sc.seed, 900)
	tr := trace.Markov(trace.MarkovConfig{
		Base:      2500 * units.Kbps,
		Sigma:     trace.SigmaForQuartileRatio(4),
		MeanDwell: 15 * time.Second,
		Duration:  2 * time.Hour,
	}, rand.New(rand.NewSource(sc.seed^0x5eed)))
	alg, err := abr.New(sc.alg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Algorithm:        alg,
		Stream:           s,
		Trace:            tr,
		WatchLimit:       sc.watch,
		Seeks:            sc.seeks,
		SkipChunkRecords: skip,
	}
	if sc.faulty {
		sched := faults.GenerateSeeded(faults.DefaultScheduleConfig(), sc.seed)
		ftr, err := sched.ApplyToTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trace = ftr
		cfg.Injector = faults.NewSessionInjector(sched, sc.seed)
		cfg.Retry = RetryPolicy{Seed: sc.seed}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSkipChunkRecordsBitIdentical pins the SkipChunkRecords contract:
// every metric a campaign consumes must be bit-identical to the fully
// recorded session, across algorithms, fault weather, watch limits and
// seeks.
func TestSkipChunkRecordsBitIdentical(t *testing.T) {
	scenarios := []skipScenario{
		{name: "control", seed: 1, alg: "Control"},
		{name: "bba1-watchlimit", seed: 2, alg: "BBA-1", watch: 25 * time.Minute},
		{name: "bba2-faults", seed: 3, alg: "BBA-2", watch: 40 * time.Minute, faulty: true},
		{name: "bbaothers", seed: 4, alg: "BBA-Others", watch: time.Hour},
		{name: "bola-seeks", seed: 5, alg: "BOLA", seeks: []Seek{{AfterPlayed: 5 * time.Minute, ToChunk: 600}}},
		{name: "hybrid-faults", seed: 6, alg: "Hybrid", faulty: true},
		{name: "smooth-short", seed: 7, alg: "SmoothThroughput", watch: 45 * time.Second},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			full := runSkipScenario(t, sc, false)
			compact := runSkipScenario(t, sc, true)

			if len(compact.Chunks) != 0 {
				t.Errorf("compact result kept %d chunk records", len(compact.Chunks))
			}
			if got, want := compact.ChunkCount(), len(full.Chunks); got != want {
				t.Errorf("ChunkCount = %d, want %d", got, want)
			}
			for i := range full.Chunks {
				if g, w := compact.ChunkRateKbps(i), full.ChunkRateKbps(i); g != w {
					t.Fatalf("ChunkRateKbps(%d) = %v, want %v", i, g, w)
				}
			}

			type pair struct {
				name      string
				got, want float64
			}
			for _, p := range []pair{
				{"AvgRateKbps", compact.AvgRateKbps(), full.AvgRateKbps()},
				{"SteadyAvgRateKbps", compact.SteadyAvgRateKbps(), full.SteadyAvgRateKbps()},
				{"StartupAvgRateKbps", compact.StartupAvgRateKbps(), full.StartupAvgRateKbps()},
				{"RebuffersPerPlayhour", compact.RebuffersPerPlayhour(), full.RebuffersPerPlayhour()},
				{"SwitchesPerPlayhour", compact.SwitchesPerPlayhour(), full.SwitchesPerPlayhour()},
			} {
				// Bitwise comparison: the compact path must replay the
				// identical float operations, not merely be close.
				if math.Float64bits(p.got) != math.Float64bits(p.want) {
					t.Errorf("%s = %v, want bit-identical %v", p.name, p.got, p.want)
				}
			}

			type scalarFields struct {
				Algorithm                               string
				JoinDelay, Played, StallTime, End       time.Duration
				Rebuffers, Switches                     int
				Faults, Retries, Degradations, Failover int
				Incomplete                              bool
			}
			scrub := func(r *Result) scalarFields {
				return scalarFields{
					Algorithm: r.Algorithm, JoinDelay: r.JoinDelay,
					Played: r.Played, StallTime: r.StallTime, End: r.End,
					Rebuffers: r.Rebuffers, Switches: r.Switches,
					Faults: r.Faults, Retries: r.Retries,
					Degradations: r.Degradations, Failover: r.Failovers,
					Incomplete: r.Incomplete,
				}
			}
			if scrub(compact) != scrub(full) {
				t.Errorf("scalar Result fields diverged:\ncompact: %+v\nfull:    %+v", scrub(compact), scrub(full))
			}
			if len(compact.Seeks) != len(full.Seeks) {
				t.Fatalf("seek records: %d vs %d", len(compact.Seeks), len(full.Seeks))
			}
			for i := range full.Seeks {
				if compact.Seeks[i] != full.Seeks[i] {
					t.Errorf("Seeks[%d] = %+v, want %+v", i, compact.Seeks[i], full.Seeks[i])
				}
			}
		})
	}
}

// TestSessionReuseAllocates pins the arena contract of the reusable
// Session: once warm, re-running sessions with SkipChunkRecords must not
// allocate at all (the configured algorithm aside — RminAlways is
// stateless and allocation-free).
func TestSessionReuseAllocates(t *testing.T) {
	s := vbrStream(t, 11, 450)
	tr := trace.Markov(trace.MarkovConfig{
		Base:     3 * units.Mbps,
		Sigma:    trace.SigmaForQuartileRatio(3),
		Duration: time.Hour,
	}, rand.New(rand.NewSource(99)))
	cfg := Config{
		Algorithm:        abr.RminAlways{},
		Stream:           s,
		Trace:            tr,
		WatchLimit:       20 * time.Minute,
		SkipChunkRecords: true,
	}
	var ss Session
	runOnce := func() {
		if err := ss.Start(cfg); err != nil {
			t.Fatal(err)
		}
		for {
			done, err := ss.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
	}
	runOnce() // warm the arenas
	avg := testing.AllocsPerRun(50, runOnce)
	if avg != 0 {
		t.Errorf("warm Session re-run allocates %.1f times per session, want 0", avg)
	}
}
