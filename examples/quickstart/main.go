// Quickstart: simulate one BBA-2 streaming session over a variable
// network and print the paper's quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bba"
)

func main() {
	// A two-hour VBR title on the 235 kb/s – 5 Mb/s ladder.
	video, err := bba.NewVBRTitle("quickstart", 1800, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A network as variable as the paper's Figure 1 session: the 75th to
	// 25th percentile throughput ratio is 5.6.
	network := bba.VariableTrace(4*bba.Mbps, 5.6, time.Hour, 2)

	// Stream 20 minutes with the paper's headline algorithm.
	result, err := bba.RunSession(bba.SessionConfig{
		Algorithm:  bba.NewBBA2(),
		Video:      video,
		Trace:      network,
		WatchLimit: 20 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm         %s\n", result.Algorithm)
	fmt.Printf("played            %v\n", result.Played.Round(time.Second))
	fmt.Printf("rebuffers         %d (%.2f per playhour)\n", result.Rebuffers, result.RebuffersPerPlayhour())
	fmt.Printf("average rate      %.0f kb/s\n", result.AvgRateKbps())
	fmt.Printf("steady-state rate %.0f kb/s\n", result.SteadyAvgRateKbps())
	fmt.Printf("switches/hour     %.1f\n", result.SwitchesPerPlayhour())

	// The same session with the capacity-estimating Control for contrast
	// (the trace and title are identical — a perfectly paired A/B).
	control, err := bba.RunSession(bba.SessionConfig{
		Algorithm:  bba.NewControl(),
		Video:      video,
		Trace:      network,
		WatchLimit: 20 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversus Control:   %d rebuffers, %.0f kb/s average\n",
		control.Rebuffers, control.AvgRateKbps())
}
