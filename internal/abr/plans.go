package abr

import (
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// TitlePlan is the shareable form of the Figure 12 reservoir precompute:
// the clamped dynamic reservoir for every possible decision chunk of one
// (title, R_min, window) combination. A per-session reservoirPlan still
// pays an O(window) deficit scan per decision; the TitlePlan hoists those
// scans into construction, so a decision becomes one slice load. Each
// res[k] is produced by the very scan the session path would run — same
// operands, same order — so results are bit-identical, which the
// equivalence tests pin.
//
// A TitlePlan is immutable after construction and safe to share across
// any number of sessions and goroutines. Campaigns build one per title a
// shard draws (via PlanCache) and amortize it over every session of the
// shard — the reservoir work that profiles as the hottest block of
// scalar campaign execution disappears from the per-session cost.
// Beyond the reservoir table the plan also hoists the other per-decision
// title scans: the chunk-map endpoints Chunk_min/Chunk_max (unit
// conversions recomputed by every map construction) and per-rate prefix
// sums of chunk sizes, which turn the §7.2 lookahead-smoothing window sum
// from O(window) loads into two. All of it is exact integer or replayed
// arithmetic, so decisions stay bit-identical.
type TitlePlan struct {
	video  *media.Video  // identity of the title the plan was built for
	rmin   units.BitRate // session R_min the deficits assume
	window time.Duration // lookahead window X of the Figure 12 scan
	res    []time.Duration
	// chunkMin/chunkMax are the session ladder's map endpoints
	// l.Min().BytesIn(V) and l.Max().BytesIn(V).
	chunkMin, chunkMax int64
	// prefix[i][k] is the sum of the session-ladder rate-i chunk sizes
	// over chunks [0, k) — window sums in O(1), exactly (integer adds).
	prefix [][]int64
	// cols holds the same sizes column-major: cols[k*nr+i] is chunk k's
	// size at session rate i, so one decision's ladder scans touch one
	// contiguous run instead of striding across per-rate rows.
	cols []int64
	nr   int
}

// NewTitlePlan precomputes the reservoir table for s with lookahead
// window (0 means DefaultReservoirWindow).
func NewTitlePlan(s Stream, window time.Duration) *TitlePlan {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	p := newReservoirPlan(s)
	tp := &TitlePlan{
		video:  s.Video(),
		rmin:   s.Ladder().Min(),
		window: window,
		res:    make([]time.Duration, s.NumChunks()),
	}
	for k := range tp.res {
		tp.res[k] = p.reservoir(k, window)
	}
	l := s.Ladder()
	tp.chunkMin = l.Min().BytesIn(s.ChunkDuration())
	tp.chunkMax = l.Max().BytesIn(s.ChunkDuration())
	tp.prefix = make([][]int64, len(l))
	tp.nr = len(l)
	tp.cols = make([]int64, len(l)*s.NumChunks())
	for i := range l {
		row := make([]int64, s.NumChunks()+1)
		for k := 0; k < s.NumChunks(); k++ {
			sz := s.ChunkSize(i, k)
			row[k+1] = row[k] + sz
			tp.cols[k*tp.nr+i] = sz
		}
		tp.prefix[i] = row
	}
	return tp
}

// column returns the contiguous size column for a decision at chunk k,
// with the same end-of-title clamping upcoming applies.
func (tp *TitlePlan) column(k int) []int64 {
	n := len(tp.res)
	if k >= n {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return tp.cols[k*tp.nr : (k+1)*tp.nr]
}

// UpcomingSum returns the sum of upcoming(s, i, k+j) for j in [0, window)
// — the §7.2 lookahead window total, with the same end-of-title clamping
// the per-chunk loop applies — in O(1) via the prefix sums.
func (tp *TitlePlan) UpcomingSum(i, k, window int) int64 {
	row := tp.prefix[i]
	n := len(row) - 1
	lo, hi := k, k+window
	var sum int64
	if lo < 0 { // chunks clamped up to 0 contribute size[0] each
		stop := hi
		if stop > 0 {
			stop = 0
		}
		sum += int64(stop-lo) * (row[1] - row[0])
		lo = 0
	}
	if hi > n { // chunks clamped down to n-1 contribute size[n-1] each
		start := lo
		if start < n {
			start = n
		}
		sum += int64(hi-start) * (row[n] - row[n-1])
		hi = n
	}
	if hi > lo {
		sum += row[hi] - row[lo]
	}
	return sum
}

// matches reports whether the plan was built for this exact stream view
// and window: same title, same (possibly promoted) R_min, same lookahead.
func (tp *TitlePlan) matches(s Stream, window time.Duration) bool {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	return tp != nil && tp.video == s.Video() &&
		tp.rmin == s.Ladder().Min() && tp.window == window
}

// Reservoir returns the dynamic reservoir for a decision at chunk k. Out
// of range k gets the empty-scan value, like the session path.
func (tp *TitlePlan) Reservoir(k int) time.Duration {
	if k < 0 || k >= len(tp.res) {
		return clampReservoir(0)
	}
	return tp.res[k]
}

// PlanSource supplies shared TitlePlans. The algorithm asks for the plan
// it needs (its own window, the session's stream view), so sources stay
// ignorant of algorithm parameters.
type PlanSource interface {
	TitlePlan(s Stream, window time.Duration) *TitlePlan
}

// PlanConsumer is implemented by algorithms whose per-session reservoir
// precompute can be replaced by shared per-title plans. Callers running
// many sessions over a small catalog (campaigns, arenas, the batch
// kernel) attach one source to every freshly built algorithm; decisions
// are bit-identical either way.
type PlanConsumer interface {
	UsePlans(PlanSource)
}

type planKey struct {
	video  *media.Video
	rmin   units.BitRate
	window time.Duration
}

// PlanCache builds TitlePlans on demand and retains them keyed by
// (title, R_min, window). It is not safe for concurrent use; each
// campaign worker owns one. The plans it hands out are immutable, so
// plans may be shared freely once retrieved.
type PlanCache struct {
	m map[planKey]*TitlePlan
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache { return &PlanCache{m: make(map[planKey]*TitlePlan)} }

// TitlePlan implements PlanSource.
func (c *PlanCache) TitlePlan(s Stream, window time.Duration) *TitlePlan {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	k := planKey{video: s.Video(), rmin: s.Ladder().Min(), window: window}
	tp := c.m[k]
	if tp == nil {
		tp = NewTitlePlan(s, window)
		c.m[k] = tp
	}
	return tp
}
