// Command bbasoak is the continuous-verification daemon and the
// real-socket load rig.
//
// Soak mode (the default) runs cycles forever — or exactly -cycles N in
// one-shot mode — each cycle booting a primary/secondary origin pair (or
// targeting -url), driving concurrent netem-shaped real-HTTP sessions
// under a rotating seeded fault schedule, and checking the paper-level
// invariants on every captured journal: sessions terminate, no rebuffer
// begins above reservoir+slack, failover converges back to the primary,
// the degrade path is bounded, and the collector's archive byte-agrees
// with the local journals. SLO counters are served as Prometheus text on
// -metrics (/metrics, /healthz); one-shot mode exits non-zero if any
// cycle had a violation.
//
// Load mode (-mode load) ramps concurrent real-socket clients against
// -url in steps, measuring per-chunk TTFB and throughput distributions
// per step, locating the knee where the origin stops scaling, and
// aborting when the error rate crosses the guard.
//
// Examples:
//
//	bbasoak -cycles 3 -watch 4s                 # one-shot CI gate
//	bbasoak -metrics 127.0.0.1:9414             # daemon, scrape /metrics
//	bbasoak -mode load -url http://host:8404 -target 2000 -load-out ramp.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bba/internal/soak"
	"bba/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "soak", "soak | load")
		cycles   = flag.Int("cycles", 0, "soak: run N cycles and exit non-zero on any failure (0 = run until signalled)")
		interval = flag.Duration("interval", 2*time.Second, "soak: pause between cycles")
		sessions = flag.Int("sessions", 6, "soak: concurrent sessions per cycle")
		seed     = flag.Int64("seed", 1, "master seed; cycle N is reproducible from (seed, N)")
		watch    = flag.Duration("watch", 12*time.Second, "soak: per-session watch window")
		chunkMS  = flag.Int("chunk-ms", 500, "soak: chunk duration of the cycle titles, milliseconds")
		shape    = flag.Int("shape-kbps", 4000, "soak: per-session shaped downstream capacity")
		algs     = flag.String("algs", "", "soak: comma-separated algorithm rotation (default: built-in mix)")
		url      = flag.String("url", "", "target an already-running origin (soak: disables in-process origins; load: required)")
		colCheck = flag.Bool("collector-check", true, "soak: ship journals through a real collector and cross-check bytes")
		faultsOn = flag.Bool("faults", true, "soak: origin-side fault injection + failover secondary")
		metrics  = flag.String("metrics", "127.0.0.1:0", "soak: /metrics + /healthz listen address (\"\" disables; \":0\" prints the bound port)")
		journal  = flag.String("journal", "", "soak: append soak_cycle/slo_breach JSONL to this file")

		target    = flag.Int("target", 1000, "load: ramp ceiling, concurrent clients")
		startAt   = flag.Int("start", 0, "load: first step's client count (0 = one step size)")
		step      = flag.Int("step", 250, "load: client increment per step")
		dwell     = flag.Duration("dwell", 1500*time.Millisecond, "load: measurement window per step")
		abortRate = flag.Float64("abort-error-rate", 0.05, "load: stop the ramp past this error fraction")
		kneeF     = flag.Float64("knee-factor", 3, "load: knee = first step with p95 TTFB above factor x baseline")
		rate      = flag.Int("rate", 0, "load: ladder rung the clients request")
		loadOut   = flag.String("load-out", "", "load: write the ramp result JSON here (default stdout)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch *mode {
	case "soak":
		cfg := soakConfig{
			cycles: *cycles, interval: *interval, metricsAddr: *metrics, journal: *journal,
			soak: soak.Config{
				Sessions:       *sessions,
				Seed:           *seed,
				Watch:          *watch,
				ChunkMS:        *chunkMS,
				ShapeKbps:      *shape,
				Algorithms:     splitAlgs(*algs),
				BaseURL:        *url,
				DisableFaults:  !*faultsOn,
				CollectorCheck: *colCheck,
			},
		}
		err = runSoak(ctx, cfg)
	case "load":
		cfg := soak.LoadConfig{
			URL: *url, Target: *target, Start: *startAt, Step: *step, Dwell: *dwell,
			AbortErrorRate: *abortRate, KneeFactor: *kneeF, Rate: *rate,
		}
		err = runLoad(ctx, cfg, *loadOut)
	default:
		err = fmt.Errorf("unknown -mode %q (want soak or load)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbasoak:", err)
		os.Exit(1)
	}
}

// soakConfig carries the soak-mode flag set; onReady is the test seam
// announcing the bound metrics address.
type soakConfig struct {
	cycles      int
	interval    time.Duration
	metricsAddr string
	journal     string
	soak        soak.Config
	onReady     func(addr string)
}

// runSoak drives the cycle loop: bounded one-shot (non-zero exit on any
// failed cycle, the CI gate) or unbounded daemon (exits clean on
// SIGINT/SIGTERM; /healthz carries the verdict while it runs).
func runSoak(ctx context.Context, cfg soakConfig) error {
	cfg.soak.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	runner := soak.NewRunner(cfg.soak)
	runner.Metrics = soak.NewMetrics()

	if cfg.journal != "" {
		f, err := os.OpenFile(cfg.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		j := telemetry.NewJournal(f)
		runner.Observer = j
		defer func() {
			j.Flush()
			f.Close()
		}()
	}

	if cfg.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", runner.Metrics)
		mux.Handle("/healthz", runner.Metrics.Healthz())
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			hs.Shutdown(sctx)
			cancel()
		}()
		fmt.Printf("metrics on http://%s (/metrics, /healthz)\n", ln.Addr())
		if cfg.onReady != nil {
			cfg.onReady(ln.Addr().String())
		}
	} else if cfg.onReady != nil {
		cfg.onReady("")
	}

	failed, err := runner.Run(ctx, cfg.cycles, cfg.interval)
	if err != nil {
		return err
	}
	if cfg.cycles > 0 && failed > 0 {
		return fmt.Errorf("%d of %d cycles violated invariants", failed, cfg.cycles)
	}
	fmt.Printf("soak: %d failed cycles\n", failed)
	return nil
}

// runLoad executes one ramp and writes the result JSON.
func runLoad(ctx context.Context, cfg soak.LoadConfig, out string) error {
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	res, err := soak.RunLoad(ctx, cfg)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// splitAlgs parses the -algs rotation; empty means the package default.
func splitAlgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
