package faults

import (
	"math/rand"
	"time"
)

// EpisodeConfig shapes one fault kind's arrival process: episodes arrive
// Poisson at PerHour and last uniformly between MinDuration and
// MaxDuration.
type EpisodeConfig struct {
	// PerHour is the expected episode count per hour (0 disables the kind).
	PerHour float64
	// MinDuration and MaxDuration bound the episode length; MaxDuration
	// defaults to MinDuration when unset.
	MinDuration time.Duration
	MaxDuration time.Duration
}

func (e EpisodeConfig) enabled() bool { return e.PerHour > 0 && e.MinDuration > 0 }

func (e EpisodeConfig) drawDuration(rng *rand.Rand) time.Duration {
	max := e.MaxDuration
	if max < e.MinDuration {
		max = e.MinDuration
	}
	if max == e.MinDuration {
		return e.MinDuration
	}
	return e.MinDuration + time.Duration(rng.Int63n(int64(max-e.MinDuration)))
}

// ScheduleConfig parameterizes a seeded fault-schedule draw over a session
// horizon. Each enabled kind gets an independent Poisson arrival process,
// so schedules compose naturally: the expected fault load scales with the
// horizon and PerHour rates.
type ScheduleConfig struct {
	// Horizon is the window faults may start in (default 1 h).
	Horizon time.Duration

	// Blackouts are total link outages.
	Blackouts EpisodeConfig
	// Collapses are throughput-collapse episodes; capacity is multiplied
	// by a factor drawn uniformly from [CollapseMin, CollapseMax]
	// (defaults 0.05–0.25).
	Collapses   EpisodeConfig
	CollapseMin float64
	CollapseMax float64
	// LatencySpikes add first-byte delay per request, drawn uniformly
	// from [LatencyMin, LatencyMax] (defaults 500 ms – 2 s).
	LatencySpikes EpisodeConfig
	LatencyMin    time.Duration
	LatencyMax    time.Duration
	// ServerErrors are HTTP 503 bursts.
	ServerErrors EpisodeConfig
	// StallBodies are slowloris episodes: responses start, then hang.
	StallBodies EpisodeConfig
	// ConnResets are mid-download connection-reset episodes.
	ConnResets EpisodeConfig
}

// DefaultScheduleConfig is a moderately hostile hour of streaming: a
// couple of short blackouts and collapses, occasional latency spikes and
// 5xx bursts, rare stalls and resets. Useful as the harness's standard
// fault load.
func DefaultScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Blackouts:     EpisodeConfig{PerHour: 2, MinDuration: 10 * time.Second, MaxDuration: 40 * time.Second},
		Collapses:     EpisodeConfig{PerHour: 2, MinDuration: 30 * time.Second, MaxDuration: 2 * time.Minute},
		LatencySpikes: EpisodeConfig{PerHour: 3, MinDuration: 10 * time.Second, MaxDuration: 30 * time.Second},
		ServerErrors:  EpisodeConfig{PerHour: 2, MinDuration: 5 * time.Second, MaxDuration: 20 * time.Second},
		StallBodies:   EpisodeConfig{PerHour: 1, MinDuration: 5 * time.Second, MaxDuration: 15 * time.Second},
		ConnResets:    EpisodeConfig{PerHour: 1, MinDuration: 5 * time.Second, MaxDuration: 15 * time.Second},
	}
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Horizon <= 0 {
		c.Horizon = time.Hour
	}
	if c.CollapseMin <= 0 {
		c.CollapseMin = 0.05
	}
	if c.CollapseMax < c.CollapseMin {
		c.CollapseMax = 0.25
		if c.CollapseMax < c.CollapseMin {
			c.CollapseMax = c.CollapseMin
		}
	}
	if c.LatencyMin <= 0 {
		c.LatencyMin = 500 * time.Millisecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = 2 * time.Second
		if c.LatencyMax < c.LatencyMin {
			c.LatencyMax = c.LatencyMin
		}
	}
	return c
}

// Generate draws a fault schedule from cfg. It is deterministic given
// rng's state: the same seed always produces the same schedule, the
// property every downstream determinism guarantee builds on. Same-kind
// episodes never overlap (later arrivals are pushed past the previous
// episode's end); different kinds may coincide, as they do in the wild.
func Generate(cfg ScheduleConfig, rng *rand.Rand) *Schedule {
	cfg = cfg.withDefaults()
	var fs []Fault
	gen := func(kind Kind, ec EpisodeConfig) {
		if !ec.enabled() {
			return
		}
		// Poisson arrivals: exponential inter-arrival gaps at PerHour.
		meanGap := time.Duration(float64(time.Hour) / ec.PerHour)
		at := time.Duration(float64(meanGap) * rng.ExpFloat64())
		for at < cfg.Horizon {
			f := Fault{Kind: kind, Start: at, Duration: ec.drawDuration(rng)}
			switch kind {
			case Collapse:
				f.Factor = cfg.CollapseMin + rng.Float64()*(cfg.CollapseMax-cfg.CollapseMin)
			case LatencySpike:
				span := cfg.LatencyMax - cfg.LatencyMin
				f.Latency = cfg.LatencyMin
				if span > 0 {
					f.Latency += time.Duration(rng.Int63n(int64(span)))
				}
			}
			fs = append(fs, f)
			// Next arrival starts after this episode ends so same-kind
			// episodes never overlap.
			at = f.End() + time.Duration(float64(meanGap)*rng.ExpFloat64())
		}
	}
	gen(Blackout, cfg.Blackouts)
	gen(Collapse, cfg.Collapses)
	gen(LatencySpike, cfg.LatencySpikes)
	gen(ServerError, cfg.ServerErrors)
	gen(StallBody, cfg.StallBodies)
	gen(ConnReset, cfg.ConnResets)
	return MustSchedule(fs)
}

// GenerateSeeded is Generate with a fresh rand.Rand from seed.
func GenerateSeeded(cfg ScheduleConfig, seed int64) *Schedule {
	return Generate(cfg, rand.New(rand.NewSource(seed)))
}
