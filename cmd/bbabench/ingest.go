package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bba/internal/archive"
	"bba/internal/collect"
	"bba/internal/telemetry"
	"bba/internal/units"
)

// IngestReport is the BENCH_ingest.json schema: the fleet-collection
// pipeline's performance datapoint — collector admission throughput over
// real loopback HTTP, the shipper's player-visible hot-path cost, and a
// measured loss/duplication recovery run proving the exactly-once
// contract under injected failure.
type IngestReport struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated,omitempty"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Scale     string        `json:"scale"`
	Ingest    IngestResult  `json:"ingest"`
	Shipper   Result        `json:"shipper"`
	Recovery  Recovery      `json:"recovery"`
	Archive   ArchiveResult `json:"archive"`
}

// ArchiveResult is the columnar archive measurement: a run of Events
// appended through the WAL, compacted to blocks, then aggregated straight
// off the encoded columns versus the equivalent fold over the flat journal
// JSONL. Lossless records that re-exporting the store reproduced the
// appended journal byte-for-byte; Speedup is the acceptance ratio
// (columnar events/s over JSONL events/s).
type ArchiveResult struct {
	Events        int     `json:"events"`
	Blocks        int     `json:"blocks"`
	JournalBytes  int64   `json:"journal_bytes"`
	BlockBytes    int64   `json:"block_bytes"`
	AppendNsPerEv float64 `json:"append_ns_per_event"`
	AggEventsSec  float64 `json:"aggregate_events_per_sec"`
	ScanEventsSec float64 `json:"jsonl_scan_events_per_sec"`
	Speedup       float64 `json:"speedup"`
	Lossless      bool    `json:"lossless"`
}

// IngestResult extends the shared Result with throughput in the pipeline's
// native units.
type IngestResult struct {
	Result
	BatchEvents  int     `json:"batch_events"`
	FramesPerSec float64 `json:"frames_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Recovery is the loss/dup recovery measurement: every third ingest
// attempt is refused before processing (loss) and every fifth is processed
// but its acknowledgement replaced with a 503 (a lost ack, so the retry is
// a duplicate). ExactlyOnce records that the collector still admitted
// every event exactly once.
type Recovery struct {
	EventsSent      int64 `json:"events_sent"`
	EventsAdmitted  int64 `json:"events_admitted"`
	FramesShipped   int64 `json:"frames_shipped"`
	FramesDuplicate int64 `json:"frames_duplicate"`
	Retries         int64 `json:"retries"`
	ExactlyOnce     bool  `json:"exactly_once"`
}

// ingestBatchEvents is the events-per-frame the ingest benchmark ships —
// the shipper's default batch size.
const ingestBatchEvents = 64

// collectServer serves a collector over real loopback TCP (not an
// in-process handler): the measured path includes the HTTP stack the
// fleet actually traverses.
func collectServer(wrap func(http.Handler) http.Handler) (*collect.Collector, string, func(), error) {
	c := collect.NewCollector(collect.CollectorConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	var h http.Handler = c.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return c, "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// ingestTakeBench measures CollectorIngestTake: one POSTed frame of
// ingestBatchEvents events per iteration, decode + checksum + dedup +
// admission included, over loopback HTTP.
func ingestTakeBench(addr string, payload []byte) func(b *testing.B) {
	return func(b *testing.B) {
		client := &http.Client{}
		buf := make([]byte, 0, collect.EncodedLen(len("bench"), len(payload)))
		b.SetBytes(int64(collect.EncodedLen(len("bench"), len(payload))))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = collect.AppendFrame(buf[:0], collect.Frame{
				Run: "bench", Session: 1, Seq: uint64(i),
				Kind: collect.PayloadEvents, Payload: payload,
			})
			resp, err := client.Post(addr+"/ingest", "application/octet-stream", bytes.NewReader(buf))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				b.Fatalf("ingest: %s", resp.Status)
			}
		}
	}
}

// shipperOnEventBench measures the player-visible OnEvent hot path with
// queue capacity available; the contract is zero allocations.
func shipperOnEventBench(addr string) func(b *testing.B) {
	return func(b *testing.B) {
		s, err := collect.NewShipper(collect.ShipperConfig{
			Addr: addr, Run: "bench", Session: 2,
			BatchEvents: ingestBatchEvents, FlushInterval: -1,
			Queue: collect.QueueConfig{MemFrames: 1 << 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ev := telemetry.Event{
			Kind: telemetry.BufferSample, Session: "d0.w0.s0.bench", Chunk: 1,
			RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second, Label: "BBA-0",
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.OnEvent(ev)
		}
	}
}

// recoveryRun ships a fixed event population through a deliberately lossy
// collector front and reports what the pipeline absorbed.
func recoveryRun(events int) (Recovery, error) {
	var n atomic.Int64
	c, addr, stop, err := collectServer(func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/ingest" {
				inner.ServeHTTP(w, r)
				return
			}
			switch k := n.Add(1); {
			case k%3 == 0:
				// Loss: refused before the collector sees it.
				http.Error(w, "injected loss", http.StatusServiceUnavailable)
			case k%5 == 0:
				// Lost ack: processed, then the 204 is withheld — the
				// shipper's retry delivers a duplicate.
				inner.ServeHTTP(httptest.NewRecorder(), r)
				http.Error(w, "injected lost ack", http.StatusServiceUnavailable)
			default:
				inner.ServeHTTP(w, r)
			}
		})
	})
	if err != nil {
		return Recovery{}, err
	}
	defer stop()

	s, err := collect.NewShipper(collect.ShipperConfig{
		Addr: addr, Run: "recovery", Session: 1,
		BatchEvents: 16, FlushInterval: -1, Senders: 2,
		Queue: collect.QueueConfig{MemFrames: 1 << 12},
		Retry: collect.RetryPolicy{MaxAttempts: 1 << 10, Base: 100 * time.Microsecond, Cap: 2 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		return Recovery{}, err
	}
	ev := telemetry.Event{Kind: telemetry.BufferSample, Session: "s", Chunk: 1, RateIndex: -1, PrevRateIndex: -1}
	for i := 0; i < events; i++ {
		// Re-offer any event the non-blocking hot path refuses while the
		// framer recycles batch buffers.
		for {
			before := s.Stats().Events
			s.OnEvent(ev)
			if s.Stats().Events > before {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	if err := s.Close(); err != nil {
		return Recovery{}, err
	}
	ss, cs := s.Stats(), c.Stats()
	return Recovery{
		EventsSent:      ss.Events,
		EventsAdmitted:  cs.Events,
		FramesShipped:   ss.FramesShipped,
		FramesDuplicate: cs.FramesDup,
		Retries:         ss.Retries,
		// Hot-path refusals were re-offered above, so EventsDropped does not
		// bear on delivery; a dropped frame would.
		ExactlyOnce: cs.Events == int64(events) && ss.FramesDropped == 0,
	}, nil
}

// archiveRun appends events to a columnar store and a flat journal,
// compacts, then races archive.Aggregate against the same rollup computed
// by parsing the journal line-by-line — the query the archive exists to
// make fast. Both sides run three times; the best take counts.
func archiveRun(events int) (ArchiveResult, error) {
	dir, err := os.MkdirTemp("", "bba-bench-archive-*")
	if err != nil {
		return ArchiveResult{}, err
	}
	defer os.RemoveAll(dir)
	st, err := archive.Open(archive.Config{Dir: dir})
	if err != nil {
		return ArchiveResult{}, err
	}
	defer st.Close()

	const batchEvents = 512
	kinds := []telemetry.Kind{
		telemetry.ChunkComplete, telemetry.BufferSample, telemetry.ChunkComplete,
		telemetry.RateSwitch, telemetry.ChunkComplete, telemetry.RebufferStart,
		telemetry.RebufferEnd, telemetry.ChunkComplete,
	}
	var journal, batch []byte
	var appending time.Duration
	for i := 0; i < events; {
		batch = batch[:0]
		for j := 0; j < batchEvents && i < events; j, i = j+1, i+1 {
			batch = telemetry.AppendJSONL(batch, telemetry.Event{
				Kind:    kinds[i%len(kinds)],
				Session: fmt.Sprintf("d0.w%d.s%d.BBA-%d", i%4, i%97, i%2),
				At:      time.Duration(i) * time.Millisecond, Chunk: i % 300,
				RateIndex: i % 5, PrevRateIndex: (i + 1) % 5,
				Rate: units.BitRate(1000000 + i%5*500000), Bytes: 1 << 18,
				Duration: 4 * time.Second, Buffer: 12 * time.Second,
			})
		}
		journal = append(journal, batch...)
		t0 := time.Now()
		if err := st.Append("bench", batch); err != nil {
			return ArchiveResult{}, err
		}
		appending += time.Since(t0)
	}
	appendNs := float64(appending.Nanoseconds()) / float64(events)
	if err := st.CompactAll(); err != nil {
		return ArchiveResult{}, err
	}

	res := ArchiveResult{Events: events, JournalBytes: int64(len(journal)), AppendNsPerEv: appendNs}
	for _, rs := range st.Stats() {
		res.Blocks += rs.Blocks
		res.BlockBytes += rs.BlockBytes
	}

	var exported bytes.Buffer
	if err := st.Export("bench", &exported); err != nil {
		return ArchiveResult{}, err
	}
	res.Lossless = bytes.Equal(exported.Bytes(), journal)

	q := archive.Query{Run: "bench"}
	var colBest, rowBest time.Duration
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		rollup, err := st.Aggregate(q)
		if err != nil {
			return ArchiveResult{}, err
		}
		if d := time.Since(t0); i == 0 || d < colBest {
			colBest = d
		}
		if rollup.Rows != int64(events) {
			return ArchiveResult{}, fmt.Errorf("aggregate saw %d rows, want %d", rollup.Rows, events)
		}

		// The JSONL side computes the identical per-group rollup off the
		// flat journal — parse each line, fold the same sums.
		t0 = time.Now()
		jr, err := jsonlRollup(journal)
		if err != nil {
			return ArchiveResult{}, err
		}
		if d := time.Since(t0); i == 0 || d < rowBest {
			rowBest = d
		}
		if err := sameRollup(rollup.Groups, jr); err != nil {
			return ArchiveResult{}, err
		}
	}
	res.AggEventsSec = float64(events) / colBest.Seconds()
	res.ScanEventsSec = float64(events) / rowBest.Seconds()
	res.Speedup = res.AggEventsSec / res.ScanEventsSec
	return res, nil
}

// jsonlRollup is the flat-file equivalent of archive.Aggregate: parse
// every journal line, fold the same per-group sums. This is what a
// consumer without the columnar archive has to do.
func jsonlRollup(journal []byte) (map[string]*archive.GroupRollup, error) {
	groups := map[string]*archive.GroupRollup{}
	sessions := map[string]map[string]bool{}
	for rest := journal; len(rest) > 0; {
		nl := bytes.IndexByte(rest, '\n')
		line := rest[:nl+1]
		rest = rest[nl+1:]
		e, ok := telemetry.ParseJSONL(line)
		if !ok {
			return nil, fmt.Errorf("journal line unparsable: %q", line)
		}
		g := telemetry.GroupOfSession(e.Session)
		gr := groups[g]
		if gr == nil {
			gr = &archive.GroupRollup{Group: g}
			groups[g] = gr
			sessions[g] = map[string]bool{}
		}
		if !sessions[g][e.Session] {
			sessions[g][e.Session] = true
			gr.Sessions++
		}
		gr.Events++
		switch e.Kind {
		case telemetry.ChunkComplete:
			gr.Chunks++
			gr.Bytes += e.Bytes
			gr.RateSumBps += int64(e.Rate)
		case telemetry.RebufferStart:
			gr.Rebuffers++
		case telemetry.RebufferEnd:
			gr.RebufferNS += int64(e.Duration)
		case telemetry.RateSwitch:
			gr.Switches++
			if e.RateIndex > e.PrevRateIndex {
				gr.SwitchUp++
			}
		case telemetry.SessionEnd:
			gr.PlayedNS += int64(e.Played)
		}
	}
	return groups, nil
}

// sameRollup checks both sides agree — the race is only fair if the
// answers match.
func sameRollup(cols []archive.GroupRollup, rows map[string]*archive.GroupRollup) error {
	if len(cols) != len(rows) {
		return fmt.Errorf("rollup mismatch: %d columnar groups vs %d jsonl", len(cols), len(rows))
	}
	for _, c := range cols {
		r := rows[c.Group]
		if r == nil || *r != c {
			return fmt.Errorf("rollup mismatch for group %s: %+v vs %+v", c.Group, c, r)
		}
	}
	return nil
}

// runIngest executes the fleet-collection suite and writes BENCH_ingest.json.
func runIngest(quick, stamp bool, out string) error {
	report := IngestReport{
		Schema:    "bba-bench-ingest/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     map[bool]string{true: "quick", false: "full"}[quick],
	}
	if stamp {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	var payload []byte
	for i := 0; i < ingestBatchEvents; i++ {
		payload = telemetry.AppendJSONL(payload, telemetry.Event{
			Kind: telemetry.BufferSample, Session: "bench", Chunk: i,
			RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second,
		})
	}

	_, addr, stop, err := collectServer(nil)
	if err != nil {
		return err
	}
	r := testing.Benchmark(ingestTakeBench(addr, payload))
	stop()
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	report.Ingest = IngestResult{
		Result: Result{
			Name: "CollectorIngestTake", Iterations: r.N, NsPerOp: nsPerOp,
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		},
		BatchEvents:  ingestBatchEvents,
		FramesPerSec: 1e9 / nsPerOp,
		EventsPerSec: ingestBatchEvents * 1e9 / nsPerOp,
	}
	fmt.Fprintf(os.Stderr, "bench %-28s %12.0f ns/op %14.0f events/s\n",
		report.Ingest.Name, report.Ingest.NsPerOp, report.Ingest.EventsPerSec)

	_, addr, stop, err = collectServer(nil)
	if err != nil {
		return err
	}
	r = testing.Benchmark(shipperOnEventBench(addr))
	stop()
	report.Shipper = Result{
		Name: "ShipperOnEvent", Iterations: r.N,
		NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "bench %-28s %12.1f ns/op %6d allocs/op\n",
		report.Shipper.Name, report.Shipper.NsPerOp, report.Shipper.AllocsPerOp)

	events := 20000
	if quick {
		events = 2000
	}
	rec, err := recoveryRun(events)
	if err != nil {
		return err
	}
	report.Recovery = rec
	fmt.Fprintf(os.Stderr, "recovery: %d/%d events exactly-once, %d dup frames absorbed, %d retries\n",
		rec.EventsAdmitted, rec.EventsSent, rec.FramesDuplicate, rec.Retries)
	if !rec.ExactlyOnce {
		return fmt.Errorf("recovery run violated exactly-once: %+v", rec)
	}

	archEvents := 1 << 20
	if quick {
		archEvents = 1 << 17
	}
	arch, err := archiveRun(archEvents)
	if err != nil {
		return err
	}
	report.Archive = arch
	fmt.Fprintf(os.Stderr, "archive: %d events in %d blocks (%.1f MiB vs %.1f MiB journal); aggregate %.1fM ev/s vs jsonl %.2fM ev/s = %.1fx, lossless=%v\n",
		arch.Events, arch.Blocks, float64(arch.BlockBytes)/(1<<20), float64(arch.JournalBytes)/(1<<20),
		arch.AggEventsSec/1e6, arch.ScanEventsSec/1e6, arch.Speedup, arch.Lossless)
	if !arch.Lossless {
		return fmt.Errorf("archive export was not lossless")
	}

	return write(report, out)
}
