package abr

import (
	"time"
)

// BBA0 is the Section 4 baseline buffer-based algorithm: Algorithm 1 over a
// fixed-geometry linear rate map.
//
// The geometry follows the paper's deployment exactly: a large fixed
// 90-second reservoir ("big enough to absorb the variation from VBR"), a
// cushion ending where the map reaches R_max at 90% of the buffer, and the
// remaining 10% as upper reservoir. For the 240-second browser player that
// is reservoir 90 s, cushion 126 s, upper reservoir 24 s.
type BBA0 struct {
	// Reservoir is r; the paper's deployment used 90 s.
	Reservoir time.Duration
	// RampEndFraction is where f(B) first reaches R_max, as a fraction of
	// B_max; the paper used 0.9.
	RampEndFraction float64

	prev int
}

// NewBBA0 returns a BBA0 with the paper's deployed parameters.
func NewBBA0() *BBA0 {
	return &BBA0{Reservoir: 90 * time.Second, RampEndFraction: 0.9, prev: -1}
}

// Name implements Algorithm.
func (b *BBA0) Name() string { return "BBA-0" }

// Map returns the rate map BBA0 uses for a given buffer capacity.
func (b *BBA0) Map(s Stream, bufferMax time.Duration) RateMap {
	l := s.Ladder()
	cushion := time.Duration(b.RampEndFraction*float64(bufferMax)) - b.Reservoir
	if cushion < time.Second {
		cushion = time.Second
	}
	return RateMap{
		Rmin:      l.Min(),
		Rmax:      l.Max(),
		Reservoir: b.Reservoir,
		Cushion:   cushion,
	}
}

// Next implements Algorithm.
func (b *BBA0) Next(st State, s Stream) int {
	next := Algorithm1(b.Map(s, st.BufferMax), s.Ladder(), b.prev, st.Buffer)
	b.prev = next
	return next
}
