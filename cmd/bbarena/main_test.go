package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"bba/internal/abr"
	"bba/internal/arena"
)

func testOptions() options {
	return options{
		algos:     "BBA-2,BOLA,SmoothThroughput",
		sessions:  24,
		shardSize: 8,
		days:      1,
		seed:      7,
		faultSeed: 7,
		faultsOn:  true,
		sketch:    64,
	}
}

func TestRunTable(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, testOptions()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 entrants", "BBA-2 vs BOLA", "head-to-head"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSON(t *testing.T) {
	o := testOptions()
	o.jsonOut = true
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, o); err != nil {
		t.Fatal(err)
	}
	var r arena.Report
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != arena.ReportSchema || len(r.Matches) != 3 {
		t.Errorf("schema %q, %d matches", r.Schema, len(r.Matches))
	}
}

func TestRunList(t *testing.T) {
	o := options{list: true}
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	names := abr.Names()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d lines for %d registered algorithms:\n%s", len(lines), len(names), out.String())
	}
	for i, name := range names {
		if lines[i] != name {
			t.Errorf("line %d = %q, want %q", i, lines[i], name)
		}
	}
}

func TestParseEntrants(t *testing.T) {
	if got, err := parseEntrants(""); err != nil || len(got) != len(defaultField) {
		t.Errorf("default field: %v, %v", got, err)
	}
	all, err := parseEntrants("all")
	if err != nil || len(all) != len(abr.Names()) {
		t.Errorf("all: %v, %v", all, err)
	}
	if _, err := parseEntrants("BBA-2,nope"); err == nil {
		t.Error("unknown entrant accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the bad entrant: %v", err)
	}
	got, err := parseEntrants(" BBA-2 , BOLA ,")
	if err != nil || len(got) != 2 || got[0] != "BBA-2" || got[1] != "BOLA" {
		t.Errorf("whitespace/trailing comma: %v, %v", got, err)
	}
}

// TestDefaultFieldRegistered: every default entrant must stay registered.
func TestDefaultFieldRegistered(t *testing.T) {
	for _, name := range defaultField {
		if _, err := abr.New(name); err != nil {
			t.Errorf("default entrant %q: %v", name, err)
		}
	}
}
