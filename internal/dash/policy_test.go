package dash

import (
	"testing"
	"time"
)

// TestFetchPolicyPrecedence pins the withDefaults precedence contract: an
// explicit Fetch.MaxAttempts always beats the legacy ClientConfig
// MaxRetries, which in turn only fills in when MaxAttempts is unset, with
// the built-in default as the last resort.
func TestFetchPolicyPrecedence(t *testing.T) {
	cases := []struct {
		name          string
		maxAttempts   int
		legacyRetries int
		want          int
	}{
		{"both set: MaxAttempts wins", 7, 3, 7},
		{"only MaxAttempts", 7, 0, 7},
		{"only legacy MaxRetries", 0, 3, 3},
		{"neither: default", 0, 0, 4},
		{"negative MaxAttempts treated as unset", -1, 3, 3},
		{"negative legacy treated as unset", 0, -5, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := FetchPolicy{MaxAttempts: c.maxAttempts}.withDefaults(c.legacyRetries)
			if p.MaxAttempts != c.want {
				t.Errorf("MaxAttempts = %d, want %d", p.MaxAttempts, c.want)
			}
		})
	}
}

// TestFetchPolicyDefaults checks the remaining zero-value fills and that
// explicit values pass through untouched.
func TestFetchPolicyDefaults(t *testing.T) {
	p := FetchPolicy{}.withDefaults(0)
	if p.ChunkTimeout != 8*time.Second || p.BackoffBase != 200*time.Millisecond || p.BackoffCap != 5*time.Second {
		t.Errorf("zero-value defaults wrong: %+v", p)
	}
	set := FetchPolicy{
		ChunkTimeout: time.Second,
		MaxAttempts:  2,
		BackoffBase:  10 * time.Millisecond,
		BackoffCap:   time.Second,
		JitterSeed:   99,
	}
	if got := set.withDefaults(9); got != set {
		t.Errorf("explicit policy rewritten: %+v -> %+v", set, got)
	}
}
