package abr

import (
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// ReservoirBounds are the paper's practical clamp: "we bound the size of
// reservoir to be between 8 seconds to 140 seconds".
const (
	MinReservoir = 8 * time.Second
	MaxReservoir = 140 * time.Second
)

// DefaultReservoirWindow is X in the Section 5.1 calculation: "we set X as
// twice of the buffer size, i.e., 480 seconds".
const DefaultReservoirWindow = 480 * time.Second

// DynamicReservoir implements the Figure 12 calculation. Looking ahead over
// the next window of playback from chunk k, it assumes capacity exactly
// R_min and sums, chunk by chunk at rate R_min, the buffer the client will
// consume (ChunkSize/R_min seconds of download) minus the buffer it
// resupplies (V seconds per chunk). The reservoir must cover the worst
// prefix of that deficit — for a static scene the running sum goes negative
// (tiny chunks download faster than real time) and for an action scene it
// can exceed half the buffer, exactly as the paper describes. The result is
// clamped to [MinReservoir, MaxReservoir].
func DynamicReservoir(s Stream, k int, window time.Duration) time.Duration {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	v := s.ChunkDuration()
	rmin := s.Ladder().Min()
	chunks := int(window / v)
	n := s.NumChunks()
	vSecs := v.Seconds()
	var running, worst float64 // seconds of buffer deficit
	for i := 0; i < chunks; i++ {
		idx := k + i
		if idx >= n {
			break
		}
		size := s.ChunkSize(0, idx)
		downloadSecs := float64(size*8) / float64(rmin)
		running += downloadSecs - vSecs
		if running > worst {
			worst = running
			if worst >= maxReservoirSecs {
				// The max is monotone over the scan and the clamp
				// saturates here, so the rest cannot change the result.
				break
			}
		}
	}
	return clampReservoir(worst)
}

// maxReservoirSecs is MaxReservoir in the seconds domain the deficit scans
// run in. Rounding is monotone, so worst ≥ this value guarantees
// clampReservoir saturates at MaxReservoir and a scan may stop early.
const maxReservoirSecs = float64(MaxReservoir) / float64(time.Second)

func clampReservoir(worstSecs float64) time.Duration {
	r := units.SecondsToDuration(worstSecs)
	if r < MinReservoir {
		return MinReservoir
	}
	if r > MaxReservoir {
		return MaxReservoir
	}
	return r
}

// reservoirPlan caches the Figure 12 per-chunk deficit series for one
// stream, turning every per-decision reservoir recomputation into a tight
// scan over a float slice. BBA-1 (and everything built on it) recomputes
// the reservoir before *every* decision over a 480 s lookahead — ~120
// ChunkSize calls and unit conversions per chunk — which profiling shows
// dominating whole-session simulation. The plan hoists that work to one
// O(NumChunks) pass per session.
//
// The scan accumulates exactly the terms DynamicReservoir accumulates, in
// the same order — deficit[idx] is the same downloadSecs−vSecs value, with
// the same operands — so the result is bit-identical, which the
// equivalence tests in reservoir_test.go pin.
type reservoirPlan struct {
	video   *media.Video  // identity of the title the plan was built for
	rmin    units.BitRate // session R_min the deficits assume
	v       time.Duration // chunk duration
	deficit []float64     // per-chunk buffer deficit at capacity R_min, seconds
}

// newReservoirPlan precomputes the deficit series for s.
func newReservoirPlan(s Stream) *reservoirPlan {
	v := s.ChunkDuration()
	vSecs := v.Seconds()
	rmin := s.Ladder().Min()
	n := s.NumChunks()
	p := &reservoirPlan{video: s.Video(), rmin: rmin, v: v, deficit: make([]float64, n)}
	for idx := 0; idx < n; idx++ {
		downloadSecs := float64(s.ChunkSize(0, idx)*8) / float64(rmin)
		p.deficit[idx] = downloadSecs - vSecs
	}
	return p
}

// matches reports whether the plan was built for this exact stream view:
// same title and same (possibly promoted) R_min.
func (p *reservoirPlan) matches(s Stream) bool {
	return p != nil && p.video == s.Video() && p.rmin == s.Ladder().Min()
}

// reservoir is DynamicReservoir over the precomputed deficits.
func (p *reservoirPlan) reservoir(k int, window time.Duration) time.Duration {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	chunks := int(window / p.v)
	end := k + chunks
	if end > len(p.deficit) {
		end = len(p.deficit)
	}
	var running, worst float64
	for idx := k; idx < end; idx++ {
		running += p.deficit[idx]
		if running > worst {
			worst = running
			if worst >= maxReservoirSecs {
				break // clamp saturated; see DynamicReservoir
			}
		}
	}
	return clampReservoir(worst)
}
