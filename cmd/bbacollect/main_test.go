package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	archivepkg "bba/internal/archive"
	"bba/internal/campaign"
	"bba/internal/collect"
	"bba/internal/telemetry"
)

// startDaemon runs the daemon on ephemeral ports and returns its bound
// HTTP and UDP addresses plus a shutdown func that drains and returns its
// error and output.
func startDaemon(t *testing.T, o options) (httpAddr, udpAddr string, shutdown func() (error, string, string)) {
	t.Helper()
	ready := make(chan string, 2)
	o.ready = ready
	ctx, cancel := context.WithCancel(context.Background())
	var out, errw bytes.Buffer
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, &out, &errw, o) }()
	select {
	case httpAddr = <-ready:
	case err := <-errc:
		cancel()
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	if o.udp != "" {
		udpAddr = <-ready
	}
	return httpAddr, udpAddr, func() (error, string, string) {
		cancel()
		select {
		case err := <-errc:
			return err, out.String(), errw.String()
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
			return nil, "", ""
		}
	}
}

// TestDaemonEndToEnd drives the full daemon lifecycle: ingest a campaign's
// frames over HTTP (with a duplicate), an extra event batch over UDP,
// fetch the aggregated report, then drain on cancel and check the archive
// holds each admitted batch exactly once.
func TestDaemonEndToEnd(t *testing.T) {
	// Ground truth: the same campaign aggregated in-process, its shard
	// payloads captured as the shipper would send them.
	cfg := campaign.Config{
		Name: "daemon", Seed: 5, Sessions: 8, ShardSize: 8,
		Parallelism: 2, SketchSize: 32, CatalogSize: 4,
	}
	shardJSON := map[int][]byte{}
	cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
		p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
		if err != nil {
			return err
		}
		shardJSON[shard] = p
		return nil
	}
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := local.Report.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	idJSON, err := json.Marshal(cfg.Identity())
	if err != nil {
		t.Fatal(err)
	}

	archive := filepath.Join(t.TempDir(), "fleet.jsonl")
	store := filepath.Join(t.TempDir(), "fleet.archive")
	httpAddr, udpAddr, shutdown := startDaemon(t, options{
		addr: "127.0.0.1:0", udp: "127.0.0.1:0",
		archive: archive, store: store, dedupWindow: collect.DefaultDedupWindow,
		grace: 5 * time.Second,
	})

	events := telemetry.AppendJSONL(nil, telemetry.Event{
		Kind: telemetry.BufferSample, Session: "s", Chunk: 1,
		RateIndex: -1, PrevRateIndex: -1, Buffer: 3 * time.Second,
	})
	frame := func(seq uint64, kind collect.PayloadKind, payload []byte) []byte {
		return collect.AppendFrame(nil, collect.Frame{Run: "d", Session: 1, Seq: seq, Kind: kind, Payload: payload})
	}
	post := func(body []byte, wantCode int) {
		t.Helper()
		resp, err := http.Post("http://"+httpAddr+"/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("ingest: got %d, want %d", resp.StatusCode, wantCode)
		}
	}
	post(frame(0, collect.PayloadRunStart, idJSON), http.StatusNoContent)
	ev := frame(1, collect.PayloadEvents, events)
	post(ev, http.StatusNoContent)
	post(ev, http.StatusNoContent) // duplicate: acknowledged, not double-counted
	post(frame(2, collect.PayloadShard, shardJSON[0]), http.StatusNoContent)
	post(frame(3, collect.PayloadRunEnd, nil), http.StatusNoContent)

	// The fire-and-forget lane: one datagram from a second session.
	uc, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uc.Write(collect.AppendFrame(nil, collect.Frame{Run: "d", Session: 2, Seq: 0, Kind: collect.PayloadEvents, Payload: events})); err != nil {
		t.Fatal(err)
	}
	uc.Close()

	// Wait for the UDP frame via metrics, then fetch the report.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m bytes.Buffer
		m.ReadFrom(resp.Body)
		resp.Body.Close()
		if strings.Contains(m.String(), "bba_collect_events_total 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("UDP event never admitted:\n%s", m.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/report/d", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %s: %s", resp.Status, got.String())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("daemon report differs from local run:\n%s\nvs\n%s", got.String(), want.String())
	}

	// The columnar store answers queries while the daemon is live.
	qresp, err := http.Get(fmt.Sprintf("http://%s/query?run=d&agg=1", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var rollup struct {
		Run    string `json:"run"`
		Groups []struct {
			Events int64 `json:"events"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&rollup); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK || rollup.Run != "d" || len(rollup.Groups) != 1 || rollup.Groups[0].Events != 2 {
		t.Fatalf("live rollup: %d %+v, want run d with 2 events", qresp.StatusCode, rollup)
	}
	eresp, err := http.Get(fmt.Sprintf("http://%s/query?run=d", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var lines bytes.Buffer
	lines.ReadFrom(eresp.Body)
	eresp.Body.Close()
	if !bytes.Equal(lines.Bytes(), append(append([]byte(nil), events...), events...)) {
		t.Fatalf("live query events:\n%q\nwant both admitted batches", lines.Bytes())
	}
	rresp, err := http.Get(fmt.Sprintf("http://%s/runs", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var runsBody bytes.Buffer
	runsBody.ReadFrom(rresp.Body)
	rresp.Body.Close()
	if !strings.Contains(runsBody.String(), `"run":"d"`) {
		t.Fatalf("/runs missing run d: %s", runsBody.String())
	}

	// Persistence gates acknowledgement: both ACKed batches are already
	// on the flat archive file while the daemon is still running — a
	// crash here (no drain, no flush) must not lose acknowledged events.
	live, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, append(append([]byte(nil), events...), events...)) {
		t.Fatalf("archive before shutdown:\n%q\nwant both acknowledged batches already on disk", live)
	}

	err, stdout, stderr := shutdown()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(stdout, "collecting on http://") {
		t.Errorf("stdout missing listen line: %q", stdout)
	}
	if !strings.Contains(stderr, "shutting down") || !strings.Contains(stderr, "collected:") {
		t.Errorf("stderr missing drain summary: %q", stderr)
	}

	// The archive holds the HTTP batch once (duplicate discarded) and the
	// UDP batch once, flushed by the drain.
	b, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, append(append([]byte(nil), events...), events...)) {
		t.Fatalf("archive:\n%q\nwant two batches:\n%q", b, events)
	}

	// Shutdown compacted the store: the directory holds sealed blocks a
	// read-only open exports byte-identically to the flat archive file.
	ro, err := archivepkg.OpenReadOnly(store)
	if err != nil {
		t.Fatal(err)
	}
	st := ro.Stats()
	if len(st) != 1 || st[0].Blocks == 0 || st[0].WALEvents != 0 {
		t.Fatalf("store stats after shutdown: %+v, want one run fully compacted", st)
	}
	var exported bytes.Buffer
	if err := ro.Export("d", &exported); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exported.Bytes(), b) {
		t.Fatalf("columnar export differs from flat archive:\n%q\nvs\n%q", exported.Bytes(), b)
	}
}

// TestDaemonTail checks /tail streams admitted batches live.
func TestDaemonTail(t *testing.T) {
	httpAddr, _, shutdown := startDaemon(t, options{
		addr: "127.0.0.1:0", grace: 5 * time.Second,
	})
	defer shutdown()

	req, err := http.NewRequest(http.MethodGet, "http://"+httpAddr+"/tail?run=d", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail: %d", resp.StatusCode)
	}

	events := telemetry.AppendJSONL(nil, telemetry.Event{
		Kind: telemetry.BufferSample, Session: "s", Chunk: 7,
		RateIndex: -1, PrevRateIndex: -1, Buffer: 9 * time.Second,
	})
	// Another run's batch must be filtered out; run d's must arrive.
	for _, f := range []collect.Frame{
		{Run: "other", Session: 1, Seq: 0, Kind: collect.PayloadEvents, Payload: events},
		{Run: "d", Session: 1, Seq: 0, Kind: collect.PayloadEvents, Payload: events},
	} {
		post, err := http.Post("http://"+httpAddr+"/ingest", "application/octet-stream",
			bytes.NewReader(collect.AppendFrame(nil, f)))
		if err != nil {
			t.Fatal(err)
		}
		post.Body.Close()
		if post.StatusCode != http.StatusNoContent {
			t.Fatalf("ingest: %d", post.StatusCode)
		}
	}

	got := make([]byte, len(events))
	resp.Body.Read(got) // blocks until the daemon flushes the batch
	if !bytes.Equal(got, events) {
		t.Fatalf("tail delivered %q, want run d's batch %q", got, events)
	}
}

func TestDaemonBadAddr(t *testing.T) {
	err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), options{addr: "127.0.0.1:-1"})
	if err == nil {
		t.Fatal("invalid address accepted")
	}
}
