// Package sharedlink simulates several streaming players (and optional
// long-lived bulk flows) competing for one bottleneck link, the Section 8
// scenario: "when competing with other video players, if the buffer is
// full, all players have reached Rmax, and so the algorithm is fair".
//
// The link is processor-sharing: the trace capacity C(t) divides equally
// among the flows that are actively downloading, the idealized behaviour of
// long-lived TCP flows sharing a bottleneck. Chunk completions therefore
// depend on every other flow's activity — including the ON-OFF pattern of
// players with full buffers — which requires the discrete-event scheduling
// of internal/simclock rather than the single-session player's analytic
// time stepping.
package sharedlink

import (
	"errors"
	"fmt"
	"time"

	"bba/internal/abr"
	"bba/internal/buffer"
	"bba/internal/player"
	"bba/internal/simclock"
	"bba/internal/trace"
	"bba/internal/units"
)

// PlayerConfig describes one competing streaming client.
type PlayerConfig struct {
	Algorithm  abr.Algorithm
	Stream     abr.Stream
	BufferMax  time.Duration // 0 means buffer.DefaultMax
	WatchLimit time.Duration // 0 plays the whole title
	StartAt    time.Duration // session join time on the shared link
}

// Config describes the shared-bottleneck scenario.
type Config struct {
	// Trace is the bottleneck capacity, shared by everyone.
	Trace *trace.Trace
	// Players are the competing streaming clients.
	Players []PlayerConfig
	// BulkFlows adds permanently-active downloads (long-lived TCP
	// transfers) that always consume their processor-sharing share.
	BulkFlows int
	// Horizon stops the simulation at this virtual time even if players
	// have not finished (0 means 6 hours).
	Horizon time.Duration
}

// Result extends the per-player session result with the link-level view.
type Result struct {
	Players []*player.Result
	// BulkBytes is the total traffic the bulk flows moved.
	BulkBytes int64
	// Horizon reports when the simulation ended.
	Horizon time.Duration
}

// FairnessIndex computes Jain's fairness index over the players' average
// delivered video rates: (Σx)² / (n·Σx²), 1.0 meaning perfectly equal.
func (r *Result) FairnessIndex() float64 {
	var sum, sumSq float64
	n := 0
	for _, p := range r.Players {
		x := p.AvgRateKbps()
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

type flow struct {
	bytesLeft  float64
	lastSettle time.Duration
	completion *simclock.Event
	onDone     func()
}

type simPlayer struct {
	cfg     PlayerConfig
	buf     *buffer.Buffer
	res     *player.Result
	prevIdx int
	lastTP  units.BitRate
	lastDl  time.Duration
	lastB   int64
	chunk   int
	reqTime time.Duration
	done    bool
}

// Run executes the scenario.
func Run(cfg Config) (*Result, error) {
	if cfg.Trace == nil {
		return nil, errors.New("sharedlink: nil trace")
	}
	if len(cfg.Players) == 0 && cfg.BulkFlows == 0 {
		return nil, errors.New("sharedlink: nothing to simulate")
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 6 * time.Hour
	}

	var clock simclock.Clock
	active := make(map[*flow]struct{})
	out := &Result{Horizon: horizon}

	// settle charges the just-ended interval against every active flow —
	// using the trace integral, so intervals spanning a rate boundary are
	// charged exactly — and reschedules completions at the new share.
	// Callers MUST settle before mutating the active set: the interval
	// being closed out ran under the old membership.
	var settle func()
	settle = func() {
		now := clock.Now()
		n := len(active)
		for f := range active {
			if elapsed := now - f.lastSettle; elapsed > 0 {
				delivered := cfg.Trace.BytesBetween(f.lastSettle, now)
				f.bytesLeft -= float64(delivered) / float64(n)
				f.lastSettle = now
			}
		}
		// Reschedule all completions at the current instantaneous share;
		// rate-boundary events re-settle before the estimate goes stale.
		var rate units.BitRate
		if n > 0 {
			rate = units.BitRate(int64(cfg.Trace.RateAt(now)) / int64(n))
		}
		for f := range active {
			if f.completion != nil {
				clock.Cancel(f.completion)
				f.completion = nil
			}
			if f.bytesLeft <= 0 {
				f := f
				f.completion = clock.After(0, func() { finish(f, active, settle) })
				continue
			}
			if rate <= 0 {
				continue // outage: wait for the next rate change
			}
			f := f
			f.completion = clock.After(rate.DurationFor(int64(f.bytesLeft+0.5)), func() {
				finish(f, active, settle)
			})
		}
	}

	// Rate-change events at every trace segment boundary within the
	// horizon keep the shares honest.
	var boundary time.Duration
	for _, seg := range cfg.Trace.Segments() {
		boundary += seg.Duration
		if boundary >= horizon {
			break
		}
		clock.Schedule(boundary, settle)
	}

	// join settles the outgoing interval under the old membership, then
	// admits the flow and reschedules everyone at the new share.
	join := func(f *flow) {
		settle()
		f.lastSettle = clock.Now()
		active[f] = struct{}{}
		settle()
	}

	// Bulk flows: each completes a 4 MB transfer and immediately starts
	// the next, so it is always active.
	for i := 0; i < cfg.BulkFlows; i++ {
		var start func()
		start = func() {
			f := &flow{bytesLeft: 4e6}
			f.onDone = func() {
				out.BulkBytes += 4e6
				start()
			}
			join(f)
		}
		clock.Schedule(0, start)
	}

	// Streaming players.
	players := make([]*simPlayer, len(cfg.Players))
	for i, pc := range cfg.Players {
		if pc.Algorithm == nil {
			return nil, fmt.Errorf("sharedlink: player %d has nil algorithm", i)
		}
		bufMax := pc.BufferMax
		if bufMax <= 0 {
			bufMax = buffer.DefaultMax
		}
		sp := &simPlayer{
			cfg:     pc,
			buf:     buffer.New(bufMax),
			res:     &player.Result{Algorithm: pc.Algorithm.Name()},
			prevIdx: -1,
		}
		players[i] = sp
		out.Players = append(out.Players, sp.res)

		var request func()
		request = func() {
			if sp.done {
				return
			}
			if sp.chunk >= sp.cfg.Stream.NumChunks() ||
				(sp.cfg.WatchLimit > 0 && sp.buf.Played()+sp.buf.Level() >= sp.cfg.WatchLimit) {
				sp.finish(clock.Now())
				return
			}
			// ON-OFF: wait for space, draining the buffer meanwhile.
			v := sp.cfg.Stream.ChunkDuration()
			if !sp.buf.HasSpaceFor(v) {
				wait := sp.buf.TimeUntilSpaceFor(v)
				sp.buf.Advance(wait)
				clock.After(wait, request)
				return
			}
			st := abr.State{
				Now:            clock.Now(),
				Buffer:         sp.buf.Level(),
				BufferMax:      sp.buf.Max(),
				PrevIndex:      sp.prevIdx,
				NextChunk:      sp.chunk,
				LastThroughput: sp.lastTP,
				LastDownload:   sp.lastDl,
				LastChunkBytes: sp.lastB,
			}
			idx := sp.cfg.Stream.Ladder().Clamp(sp.cfg.Algorithm.Next(st, sp.cfg.Stream))
			bytes := sp.cfg.Stream.ChunkSize(idx, sp.chunk)
			sp.reqTime = clock.Now()
			f := &flow{bytesLeft: float64(bytes)}
			f.onDone = func() {
				now := clock.Now()
				dl := now - sp.reqTime
				sp.buf.Advance(dl)
				if sp.chunk == 0 {
					sp.res.JoinDelay = now
				}
				if err := sp.buf.AddChunk(v); err != nil {
					// Cannot happen: request waited for space.
					sp.finish(now)
					return
				}
				if sp.prevIdx >= 0 && idx != sp.prevIdx {
					sp.res.Switches++
				}
				sp.lastTP = units.Throughput(bytes, dl)
				sp.lastDl = dl
				sp.lastB = bytes
				sp.res.Chunks = append(sp.res.Chunks, player.ChunkRecord{
					Index:       sp.chunk,
					RateIndex:   idx,
					Rate:        sp.cfg.Stream.Ladder()[idx],
					Bytes:       bytes,
					Start:       sp.reqTime,
					Download:    dl,
					Throughput:  sp.lastTP,
					BufferAfter: sp.buf.Level(),
				})
				sp.prevIdx = idx
				sp.chunk++
				request()
			}
			join(f)
		}
		clock.Schedule(pc.StartAt, request)
	}

	clock.Run(horizon)

	// Final accounting for players still mid-session at the horizon.
	for _, sp := range players {
		if !sp.done {
			sp.finish(horizon)
		}
	}
	return out, nil
}

func (sp *simPlayer) finish(now time.Duration) {
	if sp.done {
		return
	}
	sp.done = true
	sp.buf.Resume()
	remaining := sp.buf.Level()
	if sp.cfg.WatchLimit > 0 {
		if left := sp.cfg.WatchLimit - sp.buf.Played(); left < remaining {
			remaining = left
		}
	}
	if remaining > 0 {
		sp.buf.Advance(remaining)
	}
	sp.res.Played = sp.buf.Played()
	sp.res.Rebuffers += sp.buf.Rebuffers()
	sp.res.StallTime += sp.buf.StallTime()
	sp.res.End = now
}

func finish(f *flow, active map[*flow]struct{}, settle func()) {
	if _, ok := active[f]; !ok {
		return
	}
	// Close out the interval under the old membership (f included), then
	// remove the flow and reschedule the survivors at their new share.
	settle()
	delete(active, f)
	settle()
	if f.onDone != nil {
		f.onDone()
	}
}
