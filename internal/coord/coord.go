// Package coord is the distributed campaign control plane: a coordinator
// that partitions a campaign's deterministic shard space into leases and
// hands them to worker processes over HTTP.
//
// The design splits the fleet the way grafana/tempo splits distributor
// from ingester: the coordinator owns scheduling state (lease table,
// worker registry, the exactly-once checkpoint fold) and no session
// execution; workers own execution (through the scalar or batch engine)
// and no scheduling. The contract that makes the split safe is the same
// one the campaign layer already pins locally:
//
//	a shard's accumulators depend only on (identity, shard) — never on
//	which worker computed them, when, or how many times — and the
//	campaign state is the left-to-right fold of shard accumulators in
//	shard-index order, guarded by campaign.Checkpoint's duplicate check.
//
// Leases exist purely for liveness, not correctness: an expired lease's
// shards return to the pending pool and are re-issued (lease_expire →
// lease_grant), and when the pool drains a fast worker may steal a
// straggler's remaining shards outright. Both paths can produce duplicate
// completions of one shard; Checkpoint.Has makes the second fold a no-op,
// so the report is byte-identical to a single-process run of the same
// seed regardless of fleet size, worker churn, or duplicate deliveries.
package coord

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"bba/internal/campaign"
	"bba/internal/telemetry"
)

// Defaults for the lease policy.
const (
	DefaultLeaseShards = 4
	DefaultLeaseTTL    = 15 * time.Second
)

// Config configures a Coordinator.
type Config struct {
	// Spec describes the campaign to run. Required.
	Spec Spec
	// LeaseShards is the maximum shards granted per lease (default
	// DefaultLeaseShards). Scheduling only — never part of the identity.
	LeaseShards int
	// LeaseTTL is how long a lease lives without a heartbeat (default
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Resume, when non-nil, seeds the fold from a previously saved
	// checkpoint — the coordinator's own crash-resume path. Its identity
	// must match the spec's.
	Resume *campaign.Checkpoint
	// CheckpointPath, when non-empty, receives an atomically written
	// checkpoint every CheckpointEvery folded shards and at completion.
	CheckpointPath string
	// CheckpointEvery is the folded-shard interval between checkpoint
	// writes (default 8).
	CheckpointEvery int
	// Observer, when non-nil, receives worker_join, lease_grant and
	// lease_expire telemetry events.
	Observer telemetry.Observer
	// Now is the clock (default time.Now); tests inject a fake to drive
	// expiry deterministically.
	Now func() time.Time
}

// Stats is a snapshot of coordinator activity.
type Stats struct {
	WorkersJoined  int64
	LeasesGranted  int64
	LeasesStolen   int64 // work-stealing grants (subset of LeasesGranted)
	LeasesExpired  int64
	ShardsReissued int64 // shards returned to pending by expiry
	Shards         int64 // shard completions folded (exactly once each)
	ShardsDup      int64 // duplicate completions absorbed as no-ops
	ShardsPending  int   // not leased, not folded
	ShardsLeased   int   // under at least one active lease, not folded
	ShardsDone     int   // folded
	ActiveLeases   int
	Complete       bool
}

// lease is one outstanding grant.
type lease struct {
	id        uint64
	worker    string
	expiry    time.Time
	remaining map[int]struct{} // granted shards not yet completed anywhere
	stolen    bool
}

// Coordinator owns the lease table and the exactly-once fold. All state
// lives behind one mutex; every entry point sweeps expired leases first,
// so expiry needs no background goroutine and is deterministic under an
// injected clock.
type Coordinator struct {
	cfg Config
	id  campaign.Identity

	mu        sync.Mutex
	cp        *campaign.Checkpoint
	pending   []int // ascending shard indices: not leased, not folded
	leases    map[uint64]*lease
	active    map[int]int // shard -> count of live leases covering it
	workers   map[string]time.Time
	nextLease uint64
	sinceSave int
	stats     Stats
	saveErr   error

	start time.Time
	done  chan struct{}
}

// New builds a coordinator for cfg.Spec, optionally resuming the fold from
// cfg.Resume.
func New(cfg Config) (*Coordinator, error) {
	if cfg.LeaseShards <= 0 {
		cfg.LeaseShards = DefaultLeaseShards
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	id, err := cfg.Spec.Identity()
	if err != nil {
		return nil, err
	}
	cp := campaign.NewCheckpoint(id)
	if cfg.Resume != nil {
		if !reflect.DeepEqual(cfg.Resume.Identity, id) {
			return nil, fmt.Errorf("coord: checkpoint identity does not match spec; refusing to resume")
		}
		cp = cfg.Resume
	}
	c := &Coordinator{
		cfg:     cfg,
		id:      id,
		cp:      cp,
		leases:  make(map[uint64]*lease),
		active:  make(map[int]int),
		workers: make(map[string]time.Time),
		start:   cfg.Now(),
		done:    make(chan struct{}),
	}
	for s := 0; s < id.Shards(); s++ {
		if !cp.Has(s) {
			c.pending = append(c.pending, s)
		}
	}
	if cp.Complete() {
		close(c.done)
	}
	return c, nil
}

// Identity returns the campaign identity the coordinator folds under.
func (c *Coordinator) Identity() campaign.Identity { return c.id }

// Done is closed when every shard has folded.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// emit sends a control-plane telemetry event stamped with elapsed time.
func (c *Coordinator) emit(kind telemetry.Kind, shard int, n int64, label string) {
	if c.cfg.Observer == nil {
		return
	}
	c.cfg.Observer.OnEvent(telemetry.Event{
		Kind:          kind,
		At:            c.cfg.Now().Sub(c.start),
		Chunk:         shard,
		RateIndex:     -1,
		PrevRateIndex: -1,
		Bytes:         n,
		Label:         label,
	})
}

// sweepLocked expires lapsed leases, returning their un-folded shards to
// the pending pool. Callers hold c.mu.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.Now()
	for id, l := range c.leases {
		if l.expiry.After(now) {
			continue
		}
		delete(c.leases, id)
		c.stats.LeasesExpired++
		first, reissued := -1, int64(0)
		for s := range l.remaining {
			if c.active[s]--; c.active[s] > 0 {
				continue // another (stolen) lease still covers it
			}
			delete(c.active, s)
			if c.cp.Has(s) {
				continue
			}
			c.insertPending(s)
			reissued++
			if first < 0 || s < first {
				first = s
			}
		}
		c.stats.ShardsReissued += reissued
		c.emit(telemetry.LeaseExpire, first, reissued, l.worker)
	}
}

// insertPending puts shard s back into the ascending pending pool.
func (c *Coordinator) insertPending(s int) {
	i := sort.SearchInts(c.pending, s)
	if i < len(c.pending) && c.pending[i] == s {
		return
	}
	c.pending = append(c.pending, 0)
	copy(c.pending[i+1:], c.pending[i:])
	c.pending[i] = s
}

// Join registers a worker and returns the campaign spec and lease policy.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	if req.Worker == "" {
		return JoinResponse{}, fmt.Errorf("coord: join without a worker name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.workers[req.Worker]; !known {
		c.stats.WorkersJoined++
		c.emit(telemetry.WorkerJoin, -1, 0, req.Worker)
	}
	c.workers[req.Worker] = c.cfg.Now()
	return JoinResponse{
		Spec:           c.cfg.Spec,
		Identity:       c.id,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		LeaseShards:    c.cfg.LeaseShards,
	}, nil
}

// Acquire grants a lease: up to LeaseShards pending shards, or — when the
// pool is dry but leases are outstanding — a work-stealing re-lease over a
// straggler's remaining shards. An empty, non-complete response means
// "nothing to hand out right now, poll again".
func (c *Coordinator) Acquire(req LeaseRequest) (LeaseResponse, error) {
	if req.Worker == "" {
		return LeaseResponse{}, fmt.Errorf("coord: lease request without a worker name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.workers[req.Worker] = c.cfg.Now()
	if c.cp.Complete() {
		return LeaseResponse{Complete: true}, nil
	}

	var shards []int
	stolen := false
	if len(c.pending) > 0 {
		n := c.cfg.LeaseShards
		if n > len(c.pending) {
			n = len(c.pending)
		}
		shards = append(shards, c.pending[:n]...)
		c.pending = c.pending[n:]
	} else {
		// Work-stealing: double-lease the largest straggler tail held by
		// another worker, restricted to shards with exactly one live lease
		// so two thieves never pile onto the same shard.
		var victim *lease
		for _, l := range c.leases {
			if l.worker == req.Worker {
				continue
			}
			if stealable(c, l) == 0 {
				continue
			}
			if victim == nil || stealable(c, l) > stealable(c, victim) ||
				(stealable(c, l) == stealable(c, victim) && l.id < victim.id) {
				victim = l
			}
		}
		if victim != nil {
			for s := range victim.remaining {
				if c.active[s] == 1 && !c.cp.Has(s) {
					shards = append(shards, s)
				}
			}
			sort.Ints(shards)
			if len(shards) > c.cfg.LeaseShards {
				shards = shards[:c.cfg.LeaseShards]
			}
			stolen = true
		}
	}
	if len(shards) == 0 {
		return LeaseResponse{}, nil
	}

	c.nextLease++
	l := &lease{
		id:        c.nextLease,
		worker:    req.Worker,
		expiry:    c.cfg.Now().Add(c.cfg.LeaseTTL),
		remaining: make(map[int]struct{}, len(shards)),
		stolen:    stolen,
	}
	for _, s := range shards {
		l.remaining[s] = struct{}{}
		c.active[s]++
	}
	c.leases[l.id] = l
	c.stats.LeasesGranted++
	label := req.Worker
	if stolen {
		c.stats.LeasesStolen++
		label = "steal:" + req.Worker
	}
	c.emit(telemetry.LeaseGrant, shards[0], int64(len(shards)), label)
	return LeaseResponse{
		Lease:         l.id,
		Shards:        shards,
		Stolen:        stolen,
		ExpiresMillis: c.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// stealable counts a lease's shards that a thief could take.
func stealable(c *Coordinator, l *lease) int {
	n := 0
	for s := range l.remaining {
		if c.active[s] == 1 && !c.cp.Has(s) {
			n++
		}
	}
	return n
}

// Heartbeat extends the worker's leases and reports which survived.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if req.Worker == "" {
		return HeartbeatResponse{}, fmt.Errorf("coord: heartbeat without a worker name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.workers[req.Worker] = c.cfg.Now()
	var resp HeartbeatResponse
	for _, id := range req.Leases {
		if l, ok := c.leases[id]; ok && l.worker == req.Worker {
			l.expiry = c.cfg.Now().Add(c.cfg.LeaseTTL)
			resp.Extended = append(resp.Extended, id)
		}
	}
	resp.Complete = c.cp.Complete()
	return resp, nil
}

// Complete folds one finished shard exactly once. Duplicate deliveries —
// a stolen shard's loser, a retry after a lost ack, or a straggler whose
// lease already expired — are acknowledged as no-ops via Checkpoint.Has.
// Late completions from expired leases still count when they arrive first:
// leases are liveness, the checkpoint is correctness.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	if req.Shard < 0 || req.Shard >= c.id.Shards() {
		return CompleteResponse{}, fmt.Errorf("coord: shard %d outside [0,%d)", req.Shard, c.id.Shards())
	}
	if len(req.Groups) != len(c.id.Groups) {
		return CompleteResponse{}, fmt.Errorf("coord: shard %d completion has %d groups, identity %d", req.Shard, len(req.Groups), len(c.id.Groups))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	if req.Worker != "" {
		c.workers[req.Worker] = c.cfg.Now()
	}

	// Retire the shard from every lease covering it, whichever lease the
	// completion arrived under.
	for id, l := range c.leases {
		if _, held := l.remaining[req.Shard]; !held {
			continue
		}
		delete(l.remaining, req.Shard)
		if len(l.remaining) == 0 {
			delete(c.leases, id)
		}
	}
	if c.active[req.Shard] > 0 {
		delete(c.active, req.Shard)
	}
	// The shard may still sit in pending (completion from a lease that
	// expired moments ago); drop it so it is never re-granted.
	if i := sort.SearchInts(c.pending, req.Shard); i < len(c.pending) && c.pending[i] == req.Shard {
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
	}

	if c.cp.Has(req.Shard) {
		c.stats.ShardsDup++
		return CompleteResponse{Duplicate: true, Complete: c.cp.Complete()}, nil
	}
	if err := c.cp.Record(req.Shard, req.Groups); err != nil {
		return CompleteResponse{}, err
	}
	c.stats.Shards++
	c.sinceSave++
	if c.cfg.CheckpointPath != "" && (c.sinceSave >= c.cfg.CheckpointEvery || c.cp.Complete()) {
		if err := c.cp.Save(c.cfg.CheckpointPath); err != nil && c.saveErr == nil {
			c.saveErr = err
		}
		c.sinceSave = 0
	}
	if c.cp.Complete() {
		close(c.done)
	}
	return CompleteResponse{Complete: c.cp.Complete()}, nil
}

// Sweep expires lapsed leases; the daemon ticks it so abandoned shards are
// re-issued even while no worker is talking to the coordinator.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
}

// Checkpoint saves the fold state to path (or CheckpointPath when path is
// empty) — the daemon's shutdown hook.
func (c *Coordinator) Checkpoint(path string) error {
	if path == "" {
		path = c.cfg.CheckpointPath
	}
	if path == "" {
		return fmt.Errorf("coord: no checkpoint path")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cp.Save(path)
}

// Report renders the campaign's canonical report — the byte-identical
// aggregate a local run of the same spec produces — or an error while
// shards are outstanding or a checkpoint save failed.
func (c *Coordinator) Report() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.saveErr != nil {
		return nil, fmt.Errorf("coord: checkpoint save failed mid-run: %w", c.saveErr)
	}
	rep, err := campaign.FinalReport(c.cp)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Stats returns a snapshot of the scheduling state.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ShardsPending = len(c.pending)
	s.ShardsLeased = len(c.active)
	s.ShardsDone = c.cp.CompletedShards()
	s.ActiveLeases = len(c.leases)
	s.Complete = c.cp.Complete()
	return s
}
