package abr

import (
	"time"
)

// BBA2 is the Section 6 algorithm: BBA1 in steady state, plus an
// estimation-assisted startup ramp while the buffer is still growing from
// empty.
//
// During startup the only capacity signal used is the throughput of the
// immediately previous chunk, expressed through the buffer change
// ΔB = V − ChunkSize/c[k] (equivalently V minus the last download time).
// The rate steps up one rung when ΔB exceeds a threshold that decays
// linearly from 0.875·V on an empty buffer (chunk downloaded 8× faster than
// real time, covering the worst VBR max-to-average ratio e ≈ 2 with
// R_i/R_{i+1} ≈ 2) down to 0.5·V when the cushion is full (2× real time).
// Startup ends when the buffer decreases or when the chunk map starts
// suggesting a higher rate; from then on the algorithm is purely
// buffer-based.
type BBA2 struct {
	// StartThreshold is the ΔB/V required to step up on an empty buffer
	// (the paper's 0.875).
	StartThreshold float64
	// EndThreshold is the ΔB/V required once the cushion is full (the
	// paper's 0.5).
	EndThreshold float64

	steady     BBA1
	inStartup  bool
	prev       int
	prevBuffer time.Duration
	seen       bool
}

// NewBBA2 returns a BBA2 with the paper's parameters.
func NewBBA2() *BBA2 {
	return &BBA2{
		StartThreshold: 0.875,
		EndThreshold:   0.5,
		steady:         *NewBBA1(),
		inStartup:      true,
		prev:           -1,
	}
}

// Name implements Algorithm.
func (b *BBA2) Name() string { return "BBA-2" }

// InStartup reports whether the algorithm is still in its startup phase.
func (b *BBA2) InStartup() bool { return b.inStartup }

// UsePlans implements PlanConsumer, forwarding to the steady-state BBA1.
func (b *BBA2) UsePlans(src PlanSource) { b.steady.UsePlans(src) }

// LastReservoir implements ReservoirReporter, forwarding the steady-state
// machinery's chunk-map reservoir.
func (b *BBA2) LastReservoir() (time.Duration, time.Duration, bool) {
	return b.steady.LastReservoir()
}

// Seeked implements SeekAware: a seek flushes the buffer, so the algorithm
// re-enters the startup phase (§6: startup applies "after starting a new
// video or seeking to a new point"). Accrued outage protection persists —
// it describes the connection, not the playback position.
func (b *BBA2) Seeked() {
	b.inStartup = true
	b.prevBuffer = 0
	// Back to the first-request state: the next chunk is fetched at
	// R_min on the empty buffer, exactly like a session start.
	b.prev = -1
	b.steady.prev = -1
}

// Next implements Algorithm.
func (b *BBA2) Next(st State, s Stream) int {
	l := s.Ladder()
	if b.prev < 0 {
		// First chunk: empty buffer, no throughput observed yet.
		b.prev = 0
		b.prevBuffer = st.Buffer
		b.seen = true
		b.steady.prev = 0
		return 0
	}

	// §7.1: outage protection accrues only after the startup phase ends.
	b.steady.observe(st, !b.inStartup)

	m := b.steady.Map(s, st.NextChunk, st.BufferMax)
	mapSuggestion := b.steady.algorithm1(m, s, b.prev, st.NextChunk, st.Buffer)

	if b.inStartup {
		if st.Buffer < b.prevBuffer || mapSuggestion > b.prev {
			// "BBA-2 continues to use this startup algorithm until
			// (1) the buffer is decreasing, or (2) the chunk map
			// suggests a higher rate."
			b.inStartup = false
		}
	}

	next := mapSuggestion
	if b.inStartup {
		next = b.prev
		if b.stepUpAllowed(st, s, m) {
			next = l.NextUp(b.prev)
		}
	}

	b.prevBuffer = st.Buffer
	b.prev = next
	b.steady.prev = next
	return next
}

// stepUpAllowed applies the ΔB rule for one decision.
func (b *BBA2) stepUpAllowed(st State, s Stream, m ChunkMap) bool {
	if b.prev >= len(s.Ladder())-1 {
		return false
	}
	if st.LastDownload <= 0 {
		return false
	}
	v := s.ChunkDuration()
	deltaB := v - st.LastDownload
	rampEnd := m.Reservoir + m.Cushion
	frac := 0.0
	if rampEnd > 0 {
		frac = float64(st.Buffer) / float64(rampEnd)
		if frac > 1 {
			frac = 1
		}
	}
	threshold := b.StartThreshold - (b.StartThreshold-b.EndThreshold)*frac
	return deltaB >= time.Duration(threshold*float64(v))
}
