package abr

import (
	"time"
)

// ChunkMap is the Section 5.2 generalization of the rate map to the
// buffer–chunk-size plane: it yields the maximum allowable size in bytes of
// the next chunk as a function of buffer occupancy, ramping linearly from
// the average chunk size at R_min (Chunk_min) to the average chunk size at
// R_max (Chunk_max) across the cushion.
type ChunkMap struct {
	ChunkMin, ChunkMax int64         // average chunk sizes at R_min and R_max, bytes
	Reservoir          time.Duration // r
	Cushion            time.Duration // cu
}

// MaxChunk evaluates the map: the largest chunk size the algorithm may
// request at occupancy b.
func (m ChunkMap) MaxChunk(b time.Duration) int64 {
	if b <= m.Reservoir || m.Cushion <= 0 {
		return m.ChunkMin
	}
	if b >= m.Reservoir+m.Cushion {
		return m.ChunkMax
	}
	frac := float64(b-m.Reservoir) / float64(m.Cushion)
	return m.ChunkMin + int64(frac*float64(m.ChunkMax-m.ChunkMin))
}

// upcoming returns the size of chunk k at session index i, clamping k to
// the last chunk so decisions near the end of the title stay defined.
func upcoming(s Stream, i, k int) int64 {
	if k >= s.NumChunks() {
		k = s.NumChunks() - 1
	}
	if k < 0 {
		k = 0
	}
	return s.ChunkSize(i, k)
}

// Algorithm1Chunk applies the Algorithm 1 barrier rule on the chunk map:
// stay at prev as long as the size suggested by the map does not pass the
// size of the *next upcoming chunk* at the next-higher or next-lower
// available rate. On an up-crossing it returns the highest rate whose next
// chunk still fits under the map; on a down-crossing, the lowest rate whose
// next chunk exceeds it (rounding up, as in Algorithm 1's min{R_i : R_i >
// f(B)}), floored at R_min.
func Algorithm1Chunk(m ChunkMap, s Stream, prev, k int, b time.Duration) int {
	l := s.Ladder()
	top := len(l) - 1
	switch {
	case b <= m.Reservoir:
		return 0
	case b >= m.Reservoir+m.Cushion:
		return top
	}
	if prev < 0 {
		return highestChunkAtMost(m, s, k, b)
	}
	prev = l.Clamp(prev)

	cap := m.MaxChunk(b)
	upSize := upcoming(s, l.NextUp(prev), k)
	downSize := upcoming(s, l.NextDown(prev), k)
	switch {
	case prev != top && cap >= upSize:
		// Step up: the highest rate whose upcoming chunk is still under
		// the map, but at least one step.
		next := highestChunkBelow(m, s, k, cap)
		if next <= prev {
			next = l.NextUp(prev)
		}
		return next
	case prev != 0 && cap <= downSize:
		// Step down: the lowest rate whose upcoming chunk exceeds the
		// map (round up), at most one below... the paper allows multi-
		// step drops, so take the lowest rate above the map value.
		next := lowestChunkAbove(m, s, k, cap)
		if next >= prev {
			next = l.NextDown(prev)
		}
		return next
	default:
		return prev
	}
}

// algorithm1Col is Algorithm1Chunk over a TitlePlan's contiguous size
// column for the decision chunk: the same comparisons in the same order —
// bit-identical choices — against one cache-resident run instead of
// clamped per-rate lookups.
func algorithm1Col(m ChunkMap, col []int64, prev int, b time.Duration) int {
	top := len(col) - 1
	switch {
	case b <= m.Reservoir:
		return 0
	case b >= m.Reservoir+m.Cushion:
		return top
	}
	cap := m.MaxChunk(b)
	if prev < 0 {
		best := 0
		for i, sz := range col {
			if sz <= cap {
				best = i
			}
		}
		return best
	}
	if prev > top {
		prev = top
	}
	up, down := prev+1, prev-1
	if up > top {
		up = top
	}
	if down < 0 {
		down = 0
	}
	switch {
	case prev != top && cap >= col[up]:
		best := 0
		for i, sz := range col {
			if sz < cap {
				best = i
			}
		}
		if best <= prev {
			best = up
		}
		return best
	case prev != 0 && cap <= col[down]:
		next := top
		for i, sz := range col {
			if sz > cap {
				next = i
				break
			}
		}
		if next >= prev {
			next = down
		}
		return next
	default:
		return prev
	}
}

// highestChunkAtMost returns the highest session index whose upcoming chunk
// size is ≤ the map value at b, or 0 if none.
func highestChunkAtMost(m ChunkMap, s Stream, k int, b time.Duration) int {
	cap := m.MaxChunk(b)
	best := 0
	for i := range s.Ladder() {
		if upcoming(s, i, k) <= cap {
			best = i
		}
	}
	return best
}

// highestChunkBelow returns the highest session index whose upcoming chunk
// is strictly below cap, or 0 if none.
func highestChunkBelow(m ChunkMap, s Stream, k int, cap int64) int {
	best := 0
	for i := range s.Ladder() {
		if upcoming(s, i, k) < cap {
			best = i
		}
	}
	return best
}

// lowestChunkAbove returns the lowest session index whose upcoming chunk is
// strictly above cap; if every rate fits under cap it returns the top.
func lowestChunkAbove(m ChunkMap, s Stream, k int, cap int64) int {
	for i := range s.Ladder() {
		if upcoming(s, i, k) > cap {
			return i
		}
	}
	return len(s.Ladder()) - 1
}
