package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Prom aggregates events into Prometheus-text counters and histograms and
// serves them in exposition format 0.0.4 — the /metrics endpoint on
// cmd/dashserver. It depends on nothing outside the standard library (the
// container bakes no Prometheus client), implements both Observer and
// http.Handler, and is safe for concurrent use.
type Prom struct {
	mu sync.Mutex
	ns string

	sessionsStarted uint64
	sessionsEnded   uint64
	chunksRequested uint64
	chunksCompleted uint64
	bytesTotal      uint64
	switches        uint64
	rebuffers       uint64
	seeks           uint64
	stallSeconds    float64
	faults          map[string]uint64
	retries         uint64
	failovers       uint64
	degradations    uint64

	download  hist // chunk download time, seconds
	occupancy hist // buffer level at sample points, seconds
}

// NewProm returns a Prom whose metric names are prefixed "<namespace>_"
// (empty namespace means "bba").
func NewProm(namespace string) *Prom {
	if namespace == "" {
		namespace = "bba"
	}
	return &Prom{
		ns:        namespace,
		download:  newHist(0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30),
		occupancy: newHist(5, 15, 30, 60, 90, 120, 180, 240),
	}
}

// OnEvent implements Observer.
func (p *Prom) OnEvent(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case SessionStart:
		p.sessionsStarted++
	case SessionEnd:
		p.sessionsEnded++
	case ChunkRequest:
		p.chunksRequested++
	case ChunkComplete:
		p.chunksCompleted++
		if e.Bytes > 0 {
			p.bytesTotal += uint64(e.Bytes)
		}
		p.download.observe(e.Duration.Seconds())
	case RateSwitch:
		p.switches++
	case RebufferStart:
		p.rebuffers++
	case RebufferEnd:
		p.stallSeconds += e.Duration.Seconds()
	case BufferSample:
		p.occupancy.observe(e.Buffer.Seconds())
	case Seek:
		p.seeks++
	case FaultInject:
		if p.faults == nil {
			p.faults = make(map[string]uint64)
		}
		p.faults[e.Label]++
	case ChunkRetry:
		p.retries++
	case Failover:
		p.failovers++
	case Degrade:
		p.degradations++
	}
}

// ServeHTTP implements http.Handler, writing the exposition text.
func (p *Prom) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(w)
}

// WriteTo writes the metrics in Prometheus text exposition format.
func (p *Prom) WriteTo(w interface{ Write([]byte) (int, error) }) {
	p.mu.Lock()
	defer p.mu.Unlock()
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %s\n",
			p.ns, name, help, p.ns, name, p.ns, name, formatFloat(v))
	}
	counter("sessions_started_total", "Streaming sessions begun.", float64(p.sessionsStarted))
	counter("sessions_completed_total", "Streaming sessions finished.", float64(p.sessionsEnded))
	counter("chunks_requested_total", "Chunk requests issued.", float64(p.chunksRequested))
	counter("chunks_completed_total", "Chunk downloads completed.", float64(p.chunksCompleted))
	counter("downloaded_bytes_total", "Video bytes downloaded.", float64(p.bytesTotal))
	counter("rate_switches_total", "Video rate changes between consecutive chunks.", float64(p.switches))
	counter("rebuffers_total", "Rebuffer events (playback freezes).", float64(p.rebuffers))
	counter("stall_seconds_total", "Total time playback was frozen.", p.stallSeconds)
	counter("seeks_total", "Viewer seeks executed.", float64(p.seeks))
	if len(p.faults) > 0 {
		fmt.Fprintf(w, "# HELP %s_faults_injected_total Injected faults observed, by kind.\n# TYPE %s_faults_injected_total counter\n", p.ns, p.ns)
		kinds := make([]string, 0, len(p.faults))
		for k := range p.faults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "%s_faults_injected_total{kind=%q} %d\n", p.ns, k, p.faults[k])
		}
	}
	counter("chunk_retries_total", "Chunk download re-attempts after failure.", float64(p.retries))
	counter("failovers_total", "Endpoint failovers executed by clients.", float64(p.failovers))
	counter("degradations_total", "Sessions degraded to minimum rate under faults.", float64(p.degradations))
	p.download.writeTo(w, p.ns+"_chunk_download_seconds", "Chunk download time.")
	p.occupancy.writeTo(w, p.ns+"_buffer_level_seconds", "Playback-buffer occupancy at decision points.")
}

// hist is a fixed-bucket cumulative histogram.
type hist struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative) counts; last is +Inf
	sum    float64
	total  uint64
}

func newHist(bounds ...float64) hist {
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must ascend")
	}
	return hist{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

func (h *hist) writeTo(w interface{ Write([]byte) (int, error) }, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
