package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "", true, false, false, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig07RebufferRateBBA0", "Figure 18", "SharedLinkFairness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "Fig10VBRChunkSizes", false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max-to-average ratio") {
		t.Error("figure notes missing")
	}
}

func TestBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "enormous", "", false, false, false, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(context.Background(), &out, "quick", "Fig99", false, false, false, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestCanceledContext pins the SIGINT path: a canceled context aborts the
// experiment-backed CSV output with the context's error.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, &out, "quick", "", false, false, true, false)
	if err == nil {
		t.Skip("experiment already cached by an earlier test in this process")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
