package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchTableNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range benches() {
		if b.name == "" {
			t.Error("benchmark with empty name")
		}
		if seen[b.name] {
			t.Errorf("duplicate benchmark name %q", b.name)
		}
		seen[b.name] = true
		if b.run == nil {
			t.Errorf("%s has no runner", b.name)
		}
	}
	if !seen["SessionSimulation"] {
		t.Error("the headline SessionSimulation benchmark is missing")
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sessions.json")
	report := Report{
		Schema:    "bba-bench/v1",
		GoVersion: "go-test",
		Scale:     "quick",
		Baseline:  preOptimizationBaseline,
		Results: []Result{
			{Name: "SessionSimulation", Iterations: 100, NsPerOp: 1234.5, BytesPerOp: 64, AllocsPerOp: 2},
		},
	}
	if err := write(report, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Schema != "bba-bench/v1" || len(back.Results) != 1 || back.Results[0].Name != "SessionSimulation" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if len(back.Baseline) == 0 || back.Baseline[0].NsPerOp <= 0 {
		t.Error("baseline datapoint missing from the report")
	}
}

// TestAccumMergeWorkloadRuns smoke-tests the campaign merge benchmark body
// so a broken fixture fails here rather than in CI's timed run. Session
// keys must stay globally unique or the sketch merges reject the fold.
func TestAccumMergeWorkloadRuns(t *testing.T) {
	accumMergeBench(true)(&testing.B{N: 1})
}

// TestIngestWorkloadRuns smoke-tests the fleet-collection suite bodies so
// broken fixtures fail here rather than in a timed run: one benchmark
// iteration of each, plus a small recovery run that must hold the
// exactly-once contract.
func TestIngestWorkloadRuns(t *testing.T) {
	var payload []byte
	for i := 0; i < ingestBatchEvents; i++ {
		payload = append(payload, "{}\n"...)
	}
	_, addr, stop, err := collectServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ingestTakeBench(addr, payload)(&testing.B{N: 2})
	shipperOnEventBench(addr)(&testing.B{N: 2})

	rec, err := recoveryRun(200)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.ExactlyOnce || rec.EventsAdmitted != 200 {
		t.Errorf("recovery run %+v", rec)
	}
	if rec.FramesDuplicate == 0 || rec.Retries == 0 {
		t.Errorf("injection did not engage: %+v", rec)
	}
}

// TestCoordWorkloadRuns smoke-tests the fleet-throughput benchmark body —
// coordinator, HTTP workers, exactly-once fold — so a broken fixture fails
// here rather than in CI's timed run.
func TestCoordWorkloadRuns(t *testing.T) {
	coordBench(true)(&testing.B{N: 1})
}

// TestSessionWorkloadRuns smoke-tests the headline benchmark body with a
// single session — a broken workload fails here rather than in CI's timed
// run.
func TestSessionWorkloadRuns(t *testing.T) {
	for _, observed := range []bool{false, true} {
		run, err := sessionWorkload(true, observed)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(); err != nil {
			t.Errorf("observed=%v: %v", observed, err)
		}
	}
}
