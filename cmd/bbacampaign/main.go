// Command bbacampaign runs a large-scale streaming campaign: the paired A/B
// population at million-session counts with constant memory, deterministic
// sharding and kill-resume checkpointing.
//
// A campaign is split into fixed shards (shard-size paired sessions each).
// One process can run the whole campaign, or the shard space can be striped
// across processes with -shards/-shard-of and the per-process checkpoints
// combined afterwards with -merge; either way the final report is
// byte-identical to a single-threaded run.
//
// Examples:
//
//	bbacampaign -sessions 170000 -faults -checkpoint cp.json -report report.json
//	bbacampaign -sessions 170000 -shards 4 -shard-of 2 -checkpoint cp2.json
//	bbacampaign -merge cp0.json,cp1.json,cp2.json,cp3.json -report report.json
//
// SIGINT saves a final checkpoint, emits a truncated report (marked
// "truncated": true) and exits non-zero; re-running with the same flags and
// -checkpoint resumes without re-running or double-counting any completed
// shard. Progress — sessions/s, ETA and live per-group deltas — streams to
// stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/campaign"
	"bba/internal/collect"
	"bba/internal/faults"
)

type options struct {
	algos           string
	sessions        int
	shardSize       int
	days            int
	seed            int64
	faultSeed       int64
	faultsOn        bool
	batch           bool
	batchWidth      int
	cpuProfile      string
	memProfile      string
	workers         int
	sketch          int
	stripes         int
	stripe          int
	checkpoint      string
	checkpointEvery int
	resume          bool
	merge           string
	report          string
	ship            string
	runID           string
	progressEvery   time.Duration
	// progressHook is a test seam: called with every progress snapshot in
	// addition to the stderr printer.
	progressHook func(campaign.Progress)
}

func main() {
	var o options
	flag.StringVar(&o.algos, "algos", "", "comma-separated experiment arms (default the paper's standard groups; part of the campaign identity); registered: "+strings.Join(abr.Names(), ", "))
	flag.IntVar(&o.sessions, "sessions", 10000, "paired session draws (each streamed once per group)")
	flag.IntVar(&o.shardSize, "shard-size", 1024, "paired sessions per shard (part of the campaign identity)")
	flag.IntVar(&o.days, "days", 3, "simulated calendar days")
	flag.Int64Var(&o.seed, "seed", 2014, "campaign seed")
	flag.Int64Var(&o.faultSeed, "fault-seed", 2014, "fault-weather seed (with -faults)")
	flag.BoolVar(&o.faultsOn, "faults", false, "run every session under the standard fault schedule")
	flag.BoolVar(&o.batch, "batch", false, "execute sessions through the batch kernel (byte-identical report, higher throughput)")
	flag.IntVar(&o.batchWidth, "batch-width", 0, "paired draws in flight per worker with -batch (default 8)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an allocation profile to this file at exit")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (default GOMAXPROCS)")
	flag.IntVar(&o.sketch, "sketch", 512, "quantile-sketch size per metric (part of the campaign identity)")
	flag.IntVar(&o.stripes, "shards", 1, "total process stripes the campaign is split across")
	flag.IntVar(&o.stripe, "shard-of", 0, "this process's stripe index in [0,-shards)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file path (written periodically and on exit; resumed from when present)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 8, "completed shards between checkpoint writes")
	flag.StringVar(&o.merge, "merge", "", "comma-separated stripe checkpoints to merge into a final report (runs nothing)")
	flag.StringVar(&o.report, "report", "", "final report path (default stdout)")
	flag.StringVar(&o.ship, "ship", "", "ship telemetry and shard results to this collector URL (e.g. http://host:8406); the remotely aggregated report is verified byte-for-byte against the local fold")
	flag.StringVar(&o.runID, "run-id", "", "run identifier at the collector (default campaign-<seed>)")
	flag.DurationVar(&o.progressEvery, "progress-every", 2*time.Second, "progress line interval on stderr (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacampaign:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out io.Writer, errw io.Writer, o options) error {
	if o.ship != "" {
		if o.merge != "" {
			return errors.New("-ship and -merge are mutually exclusive: merging is local-only; ship each stripe instead")
		}
		if o.stripes != 1 {
			return errors.New("-ship covers the whole campaign from one process; drop -shards or merge stripe checkpoints locally")
		}
		if !strings.HasPrefix(o.ship, "http://") && !strings.HasPrefix(o.ship, "https://") {
			return fmt.Errorf("-ship requires an http(s) collector URL (the UDP lane is best-effort events only), got %q", o.ship)
		}
	}
	if o.merge != "" {
		return runMerge(out, o)
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(errw, "bbacampaign: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(errw, "bbacampaign: memprofile:", err)
			}
		}()
	}

	var groups []abtest.Group
	if o.algos != "" {
		var names []string
		for _, name := range strings.Split(o.algos, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		var err error
		if groups, err = abtest.Groups(names...); err != nil {
			return err
		}
	}

	cfg := campaign.Config{
		Groups:          groups,
		Seed:            o.seed,
		Sessions:        o.sessions,
		ShardSize:       o.shardSize,
		Days:            o.days,
		Batch:           o.batch,
		BatchWidth:      o.batchWidth,
		Parallelism:     o.workers,
		SketchSize:      o.sketch,
		Stripe:          o.stripe,
		Stripes:         o.stripes,
		CheckpointPath:  o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.faultsOn {
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = o.faultSeed
	}
	if o.checkpoint != "" {
		if cp, err := campaign.LoadCheckpoint(o.checkpoint); err == nil {
			if o.ship != "" {
				return fmt.Errorf("cannot ship a resumed run: shards already in %s would never reach the collector; remove the checkpoint or drop -ship", o.checkpoint)
			}
			cfg.Resume = cp
			fmt.Fprintf(errw, "resuming from %s: %d shards (%d sessions) already recorded\n",
				o.checkpoint, cp.CompletedShards(), cp.SessionsDone())
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if o.progressEvery > 0 {
		cfg.Progress = progressPrinter(errw, o.progressEvery)
	}
	if o.progressHook != nil {
		printer := cfg.Progress
		cfg.Progress = func(p campaign.Progress) {
			if printer != nil {
				printer(p)
			}
			o.progressHook(p)
		}
	}

	var shipper *collect.Shipper
	runID := o.runID
	if o.ship != "" {
		if runID == "" {
			runID = fmt.Sprintf("campaign-%d", o.seed)
		}
		spill, err := os.MkdirTemp("", "bbaship-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spill)
		shipper, err = collect.NewShipper(collect.ShipperConfig{
			Addr:    o.ship,
			Run:     runID,
			Session: uint64(os.Getpid()),
			Queue:   collect.QueueConfig{SpillDir: spill},
			Retry:   collect.RetryPolicy{Seed: o.seed},
		})
		if err != nil {
			return err
		}
		defer shipper.Close()
		idJSON, err := json.Marshal(cfg.Identity())
		if err != nil {
			return err
		}
		if err := shipper.ShipRunStart(idJSON); err != nil {
			return err
		}
		fmt.Fprintf(errw, "shipping run %q to %s (session %d)\n", runID, o.ship, os.Getpid())
		cfg.Observer = shipper
		cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
			p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
			if err != nil {
				return err
			}
			return shipper.ShipShard(p)
		}
	}

	res, runErr := campaign.RunContext(ctx, cfg)
	if res != nil {
		printStats(errw, res.Stats)
	}
	if runErr != nil {
		// A cancelled run still has a resumable checkpoint and a best-effort
		// truncated report; anything else is a hard failure.
		if errors.Is(runErr, context.Canceled) && res != nil && res.Checkpoint != nil {
			if trunc, err := campaign.TruncatedReport(res.Checkpoint); err == nil {
				if err := writeReport(out, o.report, trunc); err != nil {
					return err
				}
			}
			if o.checkpoint != "" {
				fmt.Fprintf(errw, "interrupted: checkpoint saved to %s; rerun the same command to resume\n", o.checkpoint)
			}
			return fmt.Errorf("interrupted after %d shards: %w", res.Checkpoint.CompletedShards(), runErr)
		}
		return runErr
	}

	if res.Report == nil {
		// A stripe subset: the checkpoint is the product; the report comes
		// from -merge once every stripe has run.
		fmt.Fprintf(errw, "stripe %d/%d complete: %d shards in checkpoint; merge all stripes with -merge for the final report\n",
			o.stripe, o.stripes, res.Checkpoint.CompletedShards())
		if o.checkpoint == "" {
			return fmt.Errorf("stripe run without -checkpoint produces no output; pass -checkpoint")
		}
		return nil
	}
	if shipper != nil {
		return finishShipped(ctx, out, errw, o, shipper, runID, res.Report)
	}
	return writeReport(out, o.report, res.Report)
}

// finishShipped completes the run protocol — flush outstanding frames,
// announce run_end, flush again — then fetches the remotely aggregated
// report, verifies it byte-for-byte against the local fold and emits the
// remote bytes as the final report.
func finishShipped(ctx context.Context, out, errw io.Writer, o options, s *collect.Shipper, runID string, local *campaign.Report) error {
	if err := s.Flush(ctx); err != nil {
		return fmt.Errorf("flushing shipped frames: %w", err)
	}
	if err := s.ShipRunEnd(); err != nil {
		return err
	}
	if err := s.Flush(ctx); err != nil {
		return fmt.Errorf("flushing run_end: %w", err)
	}
	if err := s.Close(); err != nil {
		return err
	}
	ss := s.Stats()
	fmt.Fprintf(errw, "shipped %d frames (%d events, %d retries, %d spilled, %d dropped)\n",
		ss.FramesShipped, ss.Events, ss.Retries, ss.Queue.Spilled, ss.FramesDropped)

	remote, err := fetchReport(ctx, o.ship, runID)
	if err != nil {
		return err
	}
	var localBytes bytes.Buffer
	if err := local.WriteJSON(&localBytes); err != nil {
		return err
	}
	if !bytes.Equal(remote, localBytes.Bytes()) {
		return fmt.Errorf("remote report for run %q differs from the local fold — collector state is suspect (mixed runs under one id?)", runID)
	}
	fmt.Fprintln(errw, "remote aggregation verified: report byte-identical to the local fold")
	return writeReportBytes(out, o.report, remote)
}

// fetchReport polls the collector for the finished report. The run_end
// frame was acknowledged before this is called, so anything beyond a brief
// wait means the collector lost state.
func fetchReport(ctx context.Context, base, runID string) ([]byte, error) {
	url := strings.TrimSuffix(base, "/") + "/report/" + runID
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			var body bytes.Buffer
			_, rerr := body.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && rerr == nil {
				return body.Bytes(), nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("collector report %s: %s: %s", url, resp.Status, strings.TrimSpace(body.String()))
			}
		} else if time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func writeReportBytes(out io.Writer, path string, b []byte) error {
	if path == "" {
		_, err := out.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runMerge combines stripe checkpoints into the final report.
func runMerge(out io.Writer, o options) error {
	var cps []*campaign.Checkpoint
	for _, path := range strings.Split(o.merge, ",") {
		cp, err := campaign.LoadCheckpoint(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		cps = append(cps, cp)
	}
	merged, err := campaign.MergeCheckpoints(cps...)
	if err != nil {
		return err
	}
	rep, err := campaign.FinalReport(merged)
	if err != nil {
		return err
	}
	return writeReport(out, o.report, rep)
}

func writeReport(out io.Writer, path string, r *campaign.Report) error {
	if path == "" {
		return r.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progressPrinter returns a Progress callback that writes a throttled
// status line: shard and session counts, sessions/s, ETA and the live
// rebuffer-rate delta of each arm against the control.
func progressPrinter(w io.Writer, every time.Duration) func(campaign.Progress) {
	var last time.Duration
	return func(p campaign.Progress) {
		if p.Elapsed-last < every && p.SessionsDone < p.SessionsTotal {
			return
		}
		last = p.Elapsed
		fmt.Fprintf(w, "shard %d/%d  sessions %d/%d  %.0f/s  eta %v",
			p.ShardsDone, p.ShardsTotal, p.SessionsDone, p.SessionsTotal,
			p.SessionsPerSec, p.ETA.Round(time.Second))
		for i, g := range p.Groups {
			if i == 0 {
				fmt.Fprintf(w, "  [%s %.2f reb/hr", g.Name, g.RebufferRate)
				continue
			}
			fmt.Fprintf(w, " | %s %.2f", g.Name, g.RebufferRate)
			if g.VsControl > 0 {
				fmt.Fprintf(w, " (%.0f%%)", 100*g.VsControl)
			}
		}
		if len(p.Groups) > 0 {
			fmt.Fprint(w, "]")
		}
		fmt.Fprintln(w)
	}
}

func printStats(w io.Writer, s campaign.RunStats) {
	if s.PlayerSessions == 0 {
		return
	}
	fmt.Fprintf(w, "campaign: %d player sessions (%d paired) in %v (%.0f sessions/s, parallelism %d, peak pending %d shards)\n",
		s.PlayerSessions, s.SessionsRun, s.Elapsed.Round(time.Millisecond),
		s.SessionsPerSecond(), s.Parallelism, s.PeakPending)
	if s.Faults > 0 || s.Retries > 0 || s.Degradations > 0 || s.Failovers > 0 {
		fmt.Fprintf(w, "fault injection: %d faults, %d retries, %d degradations, %d failovers\n",
			s.Faults, s.Retries, s.Degradations, s.Failovers)
	}
}
