package main

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bba/internal/dash"
	"bba/internal/media"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	video, err := media.NewVBR(media.VBRConfig{
		Ladder:        media.DefaultLadder(),
		ChunkDuration: 500 * time.Millisecond,
		NumChunks:     12,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestPlayAgainstLocalServer(t *testing.T) {
	ts := testServer(t)
	var out bytes.Buffer
	if err := run(&out, ts.URL, "BBA-2", 3*time.Second, 0, 0, false, false, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "session summary") {
		t.Error("no summary printed")
	}
}

func TestPlayViaMPDAndShaping(t *testing.T) {
	ts := testServer(t)
	var out bytes.Buffer
	if err := run(&out, ts.URL, "BBA-0", 2*time.Second, 8000, 560, true, false, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "average rate") {
		t.Error("no metrics printed")
	}
}

func TestPlayBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "http://127.0.0.1:1", "BBA-2", time.Second, 0, 0, false, false, true, ""); err == nil {
		t.Error("dead server accepted")
	}
	if err := run(&out, "http://127.0.0.1:1", "NOPE", time.Second, 0, 0, false, false, true, ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPlayWritesJournal(t *testing.T) {
	ts := testServer(t)
	var out bytes.Buffer
	path := filepath.Join(t.TempDir(), "session.jsonl")
	if err := run(&out, ts.URL, "BBA-2", 2*time.Second, 0, 0, false, false, true, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, `"kind":"session_start"`) || !strings.Contains(text, `"kind":"session_end"`) {
		t.Errorf("journal missing session bracket events:\n%s", text)
	}
	if !strings.Contains(text, `"kind":"chunk_complete"`) {
		t.Error("journal has no chunk_complete events")
	}
}

func TestPlayWithWhatIf(t *testing.T) {
	ts := testServer(t)
	var out bytes.Buffer
	if err := run(&out, ts.URL, "BBA-2", 3*time.Second, 0, 0, false, true, true, ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "what-if on the observed network") {
		t.Error("what-if section missing")
	}
	for _, alg := range []string{"Control", "BBA-0", "BBA-Others"} {
		if !strings.Contains(text, alg) {
			t.Errorf("what-if table missing %s", alg)
		}
	}
}
