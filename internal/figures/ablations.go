package figures

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/sharedlink"
	"bba/internal/trace"
	"bba/internal/units"
)

// ablationExperiment runs a reduced paired experiment over custom groups.
// Results are cached by a caller-supplied key.
var (
	ablMu    sync.Mutex
	ablCache = map[string]*abtest.Outcome{}
)

func ablationExperiment(key string, groups []abtest.Group) (*abtest.Outcome, error) {
	ablMu.Lock()
	defer ablMu.Unlock()
	if out, ok := ablCache[key]; ok {
		return out, nil
	}
	out, err := abtest.Run(abtest.Config{
		Seed:              ExperimentSeed + 7,
		Days:              2,
		SessionsPerWindow: 40,
		Groups:            groups,
	})
	if err != nil {
		return nil, err
	}
	ablCache[key] = out
	return out, nil
}

func groupPeakSummary(out *abtest.Outcome, names []string) []string {
	var notes []string
	for _, g := range names {
		ws := out.Windows[g]
		rb := peakAvg(ws, func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
		rate := peakAvg(ws, func(w metrics.Window) float64 { return w.AvgRateKbps })
		sw := peakAvg(ws, func(w metrics.Window) float64 { return w.SwitchesPerPlayhour })
		notes = append(notes, fmt.Sprintf("%-28s peak: %.3f rebuf/h, %.0f kb/s, %.1f switches/h", g, rb, rate, sw))
	}
	return notes
}

func summaryFigure(id, title string, out *abtest.Outcome, names []string, paperNote string) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "window",
		YLabel: "rebuffers per playhour",
	}
	for _, g := range names {
		ws := out.Windows[g]
		ys := make([]float64, len(ws))
		for i, w := range ws {
			ys[i] = w.RebuffersPerPlayhour
		}
		fig.Series = append(fig.Series, Series{Name: g, Points: windowPoints(ys)})
	}
	fig.Notes = append(fig.Notes, groupPeakSummary(out, names)...)
	fig.Notes = append(fig.Notes, paperNote)
	return fig
}

// AblationReservoir isolates the dynamic (Figure 12) reservoir: BBA-1 as
// deployed versus BBA-1 pinned to BBA-0's fixed 90 s reservoir and to a
// minimal 8 s one.
func AblationReservoir() (*Figure, error) {
	mk := func(fixed time.Duration) func(abtest.User) abr.Algorithm {
		return func(abtest.User) abr.Algorithm {
			a := abr.NewBBA1()
			a.FixedReservoir = fixed
			return a
		}
	}
	names := []string{"BBA-1 (dynamic)", "BBA-1 (fixed 90s)", "BBA-1 (fixed 8s)"}
	out, err := ablationExperiment("reservoir", []abtest.Group{
		{Name: names[0], New: mk(0)},
		{Name: names[1], New: mk(90 * time.Second)},
		{Name: names[2], New: mk(8 * time.Second)},
	})
	if err != nil {
		return nil, err
	}
	fig := summaryFigure("abl-reservoir", "Ablation: dynamic vs fixed reservoir (BBA-1 core)", out, names,
		"design claim (§5.1): the reservoir should be just big enough for the upcoming VBR variation — a small fixed reservoir under-protects, a large fixed one costs video rate")
	return fig, nil
}

// AblationOutageProtection isolates the §7.1 accrual on BBA-1.
func AblationOutageProtection() (*Figure, error) {
	names := []string{"BBA-1 (400ms accrual)", "BBA-1 (no protection)"}
	out, err := ablationExperiment("protection", []abtest.Group{
		{Name: names[0], New: func(abtest.User) abr.Algorithm { return abr.NewBBA1() }},
		{Name: names[1], New: func(abtest.User) abr.Algorithm {
			a := abr.NewBBA1()
			a.ProtectionPerChunk = 0
			return a
		}},
	})
	if err != nil {
		return nil, err
	}
	return summaryFigure("abl-protection", "Ablation: outage-protection accrual (§7.1)", out, names,
		"design claim: 20–40 s of accrued protection converges the buffer higher and rides out brief outages"), nil
}

// AblationStartupThreshold sweeps BBA-2's ΔB step-up threshold.
func AblationStartupThreshold() (*Figure, error) {
	mk := func(start float64) func(abtest.User) abr.Algorithm {
		return func(abtest.User) abr.Algorithm {
			a := abr.NewBBA2()
			a.StartThreshold = start
			return a
		}
	}
	names := []string{"BBA-2 (0.875·V, paper)", "BBA-2 (0.5·V aggressive)", "BBA-2 (1.0·V = no ramp)"}
	out, err := ablationExperiment("startup", []abtest.Group{
		{Name: names[0], New: mk(0.875)},
		{Name: names[1], New: mk(0.5)},
		{Name: names[2], New: mk(1.0)},
	})
	if err != nil {
		return nil, err
	}
	fig := summaryFigure("abl-startup", "Ablation: BBA-2 startup ΔB threshold", out, names,
		"design claim (§6): 0.875·V steps up only when a chunk downloads 8× faster than real time; lower thresholds ramp faster but rebuffer more, disabling the ramp reverts to BBA-1's slow start")
	// Startup rate is the interesting axis here; add it to the notes.
	for _, g := range names {
		var sum, n float64
		for _, s := range out.Sessions[g] {
			if s.StartupRateKbps > 0 {
				sum += s.StartupRateKbps
				n++
			}
		}
		if n > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%-26s first-minute avg rate: %.0f kb/s", g, sum/n))
		}
	}
	return fig, nil
}

// AblationLookahead sweeps BBA-Others' smoothing window.
func AblationLookahead() (*Figure, error) {
	mk := func(depth int) func(abtest.User) abr.Algorithm {
		return func(abtest.User) abr.Algorithm {
			a := abr.NewBBAOthers()
			a.MaxLookahead = depth
			return a
		}
	}
	names := []string{"lookahead 1", "lookahead 8", "lookahead 60 (paper)"}
	out, err := ablationExperiment("lookahead", []abtest.Group{
		{Name: names[0], New: mk(1)},
		{Name: names[1], New: mk(8)},
		{Name: names[2], New: mk(60)},
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "abl-lookahead",
		Title:  "Ablation: BBA-Others lookahead depth",
		XLabel: "window",
		YLabel: "switches per playhour",
	}
	for _, g := range names {
		ws := out.Windows[g]
		ys := make([]float64, len(ws))
		for i, w := range ws {
			ys[i] = w.SwitchesPerPlayhour
		}
		fig.Series = append(fig.Series, Series{Name: g, Points: windowPoints(ys)})
	}
	fig.Notes = groupPeakSummary(out, names)
	fig.Notes = append(fig.Notes,
		"design claim (§7.2): the deeper the lookahead, the more up-switches it suppresses — lower switch rate at a small cost in video rate")
	return fig, nil
}

// SharedLinkFairness is the Section 8 extension: competing players on one
// bottleneck. Identical BBA players split the link evenly; a BBA player
// holds its fair share against a long-lived bulk flow.
func SharedLinkFairness() (*Figure, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Ladder:    media.DefaultLadder(),
		NumChunks: 450,
	}, rand.New(rand.NewSource(30)))
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ext-sharedlink",
		Title:  "Extension (§8): players competing on a shared bottleneck",
		XLabel: "scenario",
		YLabel: "Jain fairness index over delivered rates",
	}
	s := Series{Name: "fairness"}
	for _, sc := range []struct {
		name string
		mk   func() abr.Algorithm
		link units.BitRate
	}{
		{"2×BBA-2 @5Mb/s", func() abr.Algorithm { return abr.NewBBA2() }, 5 * units.Mbps},
		{"2×BBA-2 @12Mb/s", func() abr.Algorithm { return abr.NewBBA2() }, 12 * units.Mbps},
		{"2×Control @5Mb/s", func() abr.Algorithm { return abr.NewControl() }, 5 * units.Mbps},
	} {
		res, err := sharedlink.Run(sharedlink.Config{
			Trace: trace.Constant(sc.link, 2*time.Hour),
			Players: []sharedlink.PlayerConfig{
				{Algorithm: sc.mk(), Stream: abr.NewStream(video, 0), WatchLimit: 15 * time.Minute},
				{Algorithm: sc.mk(), Stream: abr.NewStream(video, 0), WatchLimit: 15 * time.Minute},
			},
		})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: sc.name, Y: res.FairnessIndex()})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: fairness %.3f, rates %.0f / %.0f kb/s",
			sc.name, res.FairnessIndex(), res.Players[0].AvgRateKbps(), res.Players[1].AvgRateKbps()))
	}

	// BBA against a bulk flow: no downward spiral.
	cbr, err := media.NewCBR("cbr", media.DefaultLadder(), media.DefaultChunkDuration, 450)
	if err != nil {
		return nil, err
	}
	res, err := sharedlink.Run(sharedlink.Config{
		Trace:     trace.Constant(6*units.Mbps, 2*time.Hour),
		BulkFlows: 1,
		Players: []sharedlink.PlayerConfig{{
			Algorithm: abr.NewBBA2(), Stream: abr.NewStream(cbr, 0), WatchLimit: 15 * time.Minute,
		}},
		Horizon: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	s.Points = append(s.Points, Point{X: "BBA-2 vs bulk @6Mb/s", Y: res.Players[0].SteadyAvgRateKbps() / 3000})
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"BBA-2 against a long-lived bulk flow on 6 Mb/s: steady rate %.0f kb/s (fair share 3000) — no downward spiral",
		res.Players[0].SteadyAvgRateKbps()))
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		"paper §8: with full buffers all players request R_max and the algorithm is fair; requesting R_max during ON-OFF avoids the estimator downward spiral")
	return fig, nil
}
