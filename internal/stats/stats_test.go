package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate samples should report 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {-5, 15}, {110, 50},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrNoData {
		t.Errorf("empty sample: err = %v, want ErrNoData", err)
	}
	if got, _ := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("single sample P90 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuartileRatio(t *testing.T) {
	// A sample engineered to have p25=2 and p75=11.2 → ratio 5.6, the
	// paper's Figure 1 value.
	xs := []float64{1, 2, 2, 2, 11.2, 11.2, 11.2, 17}
	r, err := QuartileRatio(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 5.6, 0.01) {
		t.Errorf("quartile ratio = %v, want 5.6", r)
	}
	if r, _ := QuartileRatio([]float64{0, 0, 0, 1}); !math.IsInf(r, 1) {
		t.Errorf("zero p25 should be +Inf, got %v", r)
	}
	if r, _ := QuartileRatio([]float64{0, 0, 0, 0}); r != 1 {
		t.Errorf("all-zero ratio = %v, want 1", r)
	}
	if _, err := QuartileRatio(nil); err != ErrNoData {
		t.Errorf("want ErrNoData, got %v", err)
	}
}

func TestMedianTo95Ratio(t *testing.T) {
	// Median 2, p95 close to 10 → ratio well under 0.5 (a "highly
	// variable" session in the paper's Section 2.2 sense).
	xs := []float64{1, 2, 2, 2, 2, 3, 10, 10, 10, 10}
	r, err := MedianTo95Ratio(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0.5 {
		t.Errorf("ratio = %v, want < 0.5", r)
	}
	if r, _ := MedianTo95Ratio([]float64{0, 0}); r != 1 {
		t.Errorf("all-zero ratio = %v, want 1", r)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("want ErrNoData, got %v", err)
	}
}

func TestWelchTTestEqualSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("same-distribution samples rejected: p = %v", res.P)
	}
}

func TestWelchTTestDifferentMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.0
	}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("clearly different means not detected: p = %v", res.P)
	}
	if res.T >= 0 {
		t.Errorf("t should be negative (mean(xs) < mean(ys)), got %v", res.T)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Classic example (from Welch's original domain): verify against a
	// hand-computed value. xs mean 3, ys mean 5.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 4, 5, 6, 7}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.T, -2, 1e-9) {
		t.Errorf("t = %v, want -2", res.T)
	}
	if !almost(res.DF, 8, 1e-9) {
		t.Errorf("df = %v, want 8", res.DF)
	}
	// Two-sided p for t=2, df=8 is 0.0805 (standard tables).
	if !almost(res.P, 0.0805, 0.001) {
		t.Errorf("p = %v, want ~0.0805", res.P)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err != ErrNoData {
		t.Errorf("want ErrNoData, got %v", err)
	}
	res, err := WelchTTest([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constant samples: p = %v, want 1", res.P)
	}
	res, err = WelchTTest([]float64{2, 2, 2}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("different constant samples: p = %v, want 0", res.P)
	}
}

func TestStudentTTailAgainstTables(t *testing.T) {
	// Standard t-table checkpoints: P(T > t) one-sided.
	cases := []struct {
		t, df, want float64
	}{
		{1.812, 10, 0.05},
		{2.228, 10, 0.025},
		{1.645, 1e6, 0.05}, // approaches the normal distribution
		{0, 5, 0.5},
	}
	for _, c := range cases {
		got := studentTTail(c.t, c.df)
		if !almost(got, c.want, 0.002) {
			t.Errorf("tail(t=%v, df=%v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := regIncBeta(2.5, 4, 0.3) + regIncBeta(4, 2.5, 0.7); !almost(got, 1, 1e-10) {
		t.Errorf("symmetry violated: sum = %v", got)
	}
}

// Percentiles are monotone in p, and bounded by the sample extremes.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, _ := Percentile(xs, a)
		vb, _ := Percentile(xs, b)
		mn, _ := Percentile(xs, 0)
		mx, _ := Percentile(xs, 100)
		return va <= vb && va >= mn && vb <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The Welch p-value is always a valid probability.
func TestQuickWelchPValueRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n1, n2 uint8, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		nx := int(n1%50) + 2
		ny := int(n2%50) + 2
		xs := make([]float64, nx)
		ys := make([]float64, ny)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() + math.Mod(shift, 10)
		}
		res, err := WelchTTest(xs, ys)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1 && !math.IsNaN(res.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Lag 0 is always 1 for a non-constant series.
	xs := []float64{1, 2, 3, 4, 5, 4, 3, 2}
	if r, err := Autocorrelation(xs, 0); err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("lag-0 = %v, %v", r, err)
	}
	// A slowly varying series has strong positive lag-1 correlation.
	smooth := make([]float64, 200)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 20)
	}
	r1, err := Autocorrelation(smooth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 < 0.9 {
		t.Errorf("smooth series lag-1 = %v, want ≥0.9", r1)
	}
	// Alternating series: strong negative lag-1 correlation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	rAlt, _ := Autocorrelation(alt, 1)
	if rAlt > -0.9 {
		t.Errorf("alternating series lag-1 = %v, want ≤ -0.9", rAlt)
	}
	// Degenerate inputs.
	if _, err := Autocorrelation([]float64{1, 2}, 5); err != ErrNoData {
		t.Errorf("short sample err = %v", err)
	}
	if _, err := Autocorrelation(nil, 0); err != ErrNoData {
		t.Errorf("nil sample err = %v", err)
	}
	if r, err := Autocorrelation([]float64{3, 3, 3, 3}, 1); err != nil || r != 0 {
		t.Errorf("constant series = %v, %v", r, err)
	}
}

// The VBR scene model's defining property, verified through the public
// statistic: chunk sizes are strongly correlated at short lags (within a
// scene) and decorrelate over long lags (across sequences).
func TestAutocorrelationMatchesSceneModelIntent(t *testing.T) {
	// Synthetic scene-like series: blocks of 8 identical values.
	xs := make([]float64, 400)
	rng := rand.New(rand.NewSource(6))
	v := rng.Float64()
	for i := range xs {
		if i%8 == 0 {
			v = rng.Float64()
		}
		xs[i] = v
	}
	short, _ := Autocorrelation(xs, 1)
	long, _ := Autocorrelation(xs, 100)
	if short < 0.7 {
		t.Errorf("within-scene lag-1 = %v, want high", short)
	}
	if math.Abs(long) > 0.3 {
		t.Errorf("cross-sequence lag-100 = %v, want near 0", long)
	}
}

func TestBootstrapRatioCI(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	treatment := make([]float64, 300)
	control := make([]float64, 300)
	for i := range treatment {
		treatment[i] = 0.7 + 0.3*rng.Float64() // mean ≈ 0.85
		control[i] = 0.9 + 0.3*rng.Float64()   // mean ≈ 1.05
	}
	lo, hi, err := BootstrapRatioCI(treatment, control, 500, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	trueRatio := Mean(treatment) / Mean(control)
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if trueRatio < lo || trueRatio > hi {
		t.Errorf("true ratio %.3f outside the CI [%.3f, %.3f]", trueRatio, lo, hi)
	}
	if hi >= 1 {
		t.Errorf("CI [%.3f, %.3f] should exclude 1 for clearly separated groups", lo, hi)
	}
	// Deterministic in seed.
	lo2, hi2, err := BootstrapRatioCI(treatment, control, 500, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic for a fixed seed")
	}
}

func TestBootstrapRatioCIDegenerate(t *testing.T) {
	if _, _, err := BootstrapRatioCI([]float64{1}, []float64{1, 2}, 100, 0.9, 1); err != ErrNoData {
		t.Errorf("short treatment: %v", err)
	}
	if _, _, err := BootstrapRatioCI([]float64{1, 2}, []float64{0, 0}, 100, 0.9, 1); err == nil {
		t.Error("zero-mean control accepted")
	}
	// Defaults kick in for bad knobs.
	if _, _, err := BootstrapRatioCI([]float64{1, 2, 3}, []float64{2, 3, 4}, -1, 2, 1); err != nil {
		t.Errorf("defaulted knobs failed: %v", err)
	}
}
