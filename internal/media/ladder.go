// Package media models the video side of the system: discrete encoding
// ladders, constant- and variable-bitrate (CBR/VBR) chunk-size processes,
// and the manifests the HTTP substrate serves.
//
// The paper streams 4-second chunks from a ladder of nominal rates
// ("typically 235kb/s standard definition to 5Mb/s high definition") and its
// Section 5 turns on one empirical fact, shown in Figure 10: within a VBR
// encode of nominal rate R the chunk sizes swing around the V·R average with
// a max-to-average ratio of about 2, driven by scene activity. The VBR model
// here reproduces those two statistics with a scene process that is shared
// across the ladder (scenes are a property of the content, not the encode),
// which is also what makes the chunk-map crossings of Figure 21 appear.
package media

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bba/internal/units"
)

// Ladder is an ascending list of the nominal video rates a title is encoded
// at. Rates are distinct and positive.
type Ladder []units.BitRate

// DefaultLadder is the ladder used throughout the experiments. It follows
// the paper's 235 kb/s–5 Mb/s span with the spacing of the Netflix ladder of
// the era (adjacent rates roughly 1.3–1.6× apart).
func DefaultLadder() Ladder {
	return Ladder{
		235 * units.Kbps,
		375 * units.Kbps,
		560 * units.Kbps,
		750 * units.Kbps,
		1050 * units.Kbps,
		1750 * units.Kbps,
		2350 * units.Kbps,
		3000 * units.Kbps,
		4300 * units.Kbps,
		5000 * units.Kbps,
	}
}

// Validate reports whether the ladder is non-empty, positive, strictly
// ascending and therefore usable.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("media: empty ladder")
	}
	for i, r := range l {
		if r <= 0 {
			return fmt.Errorf("media: ladder rate %d is non-positive (%v)", i, r)
		}
		if i > 0 && l[i-1] >= r {
			return fmt.Errorf("media: ladder not strictly ascending at index %d (%v >= %v)", i, l[i-1], r)
		}
	}
	return nil
}

// Min returns R_min, the lowest rate.
func (l Ladder) Min() units.BitRate { return l[0] }

// Max returns R_max, the highest rate.
func (l Ladder) Max() units.BitRate { return l[len(l)-1] }

// Clamp limits a rate index to the valid range.
func (l Ladder) Clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(l) {
		return len(l) - 1
	}
	return i
}

// NextUp returns the index of the next higher rate ("Rate+" in Algorithm 1);
// at the top it returns the top.
func (l Ladder) NextUp(i int) int { return l.Clamp(i + 1) }

// NextDown returns the index of the next lower rate ("Rate−" in Algorithm 1);
// at the bottom it returns the bottom.
func (l Ladder) NextDown(i int) int { return l.Clamp(i - 1) }

// HighestBelow returns the index of the highest ladder rate strictly below
// r, i.e. max{R_i : R_i < r}. If no rate is below r it returns 0.
func (l Ladder) HighestBelow(r units.BitRate) int {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= r })
	if i == 0 {
		return 0
	}
	return i - 1
}

// LowestAbove returns the index of the lowest ladder rate strictly above r,
// i.e. min{R_i : R_i > r}. If no rate is above r it returns the top index.
func (l Ladder) LowestAbove(r units.BitRate) int {
	i := sort.Search(len(l), func(i int) bool { return l[i] > r })
	if i >= len(l) {
		return len(l) - 1
	}
	return i
}

// HighestAtMost returns the index of the highest rate ≤ r, or 0 when every
// rate exceeds r. This is the selection rule capacity-estimating algorithms
// use ("pick the highest rate the (adjusted) estimate can sustain").
func (l Ladder) HighestAtMost(r units.BitRate) int {
	i := sort.Search(len(l), func(i int) bool { return l[i] > r })
	if i == 0 {
		return 0
	}
	return i - 1
}

// IndexOf returns the index of rate r, or -1 when r is not on the ladder.
func (l Ladder) IndexOf(r units.BitRate) int {
	for i, x := range l {
		if x == r {
			return i
		}
	}
	return -1
}

// ParseLadder reads a comma-separated list of kb/s values ("235,560,1750")
// into a validated ladder, the format the command-line tools accept.
func ParseLadder(s string) (Ladder, error) {
	parts := strings.Split(s, ",")
	l := make(Ladder, 0, len(parts))
	for _, p := range parts {
		kbps, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("media: bad ladder entry %q: %w", p, err)
		}
		l = append(l, units.BitRate(kbps)*units.Kbps)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// String renders the ladder in ParseLadder's format.
func (l Ladder) String() string {
	parts := make([]string, len(l))
	for i, r := range l {
		parts[i] = strconv.Itoa(int(r / units.Kbps))
	}
	return strings.Join(parts, ",")
}

// FromMin returns the sub-ladder starting at the lowest rate ≥ rmin. This
// implements the paper's footnote 3: "If a user historically sustained
// 560kb/s we artificially set Rmin = 560kb/s"; the same promotion is applied
// to every test group.
func (l Ladder) FromMin(rmin units.BitRate) Ladder {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= rmin })
	if i >= len(l) {
		i = len(l) - 1
	}
	return l[i:]
}
