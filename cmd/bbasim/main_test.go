package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunScenarios(t *testing.T) {
	for _, scenario := range []string{"constant", "step", "variable", "outage"} {
		var out bytes.Buffer
		if err := run(&out, "BBA-2", 4000, scenario, 5.6, 3*time.Minute, 300, 1, 0, "", "", "", false); err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		text := out.String()
		if !strings.Contains(text, "session summary") {
			t.Errorf("%s: no summary printed", scenario)
		}
		if !strings.Contains(text, "rebuffers") {
			t.Errorf("%s: no metrics printed", scenario)
		}
	}
}

func TestRunCustomLadder(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "BBA-2", 4000, "constant", 3, 2*time.Minute, 200, 1, 0, "", "", "235,1050,3000", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "session summary") {
		t.Error("no summary with custom ladder")
	}
	if err := run(&out, "BBA-2", 4000, "constant", 3, time.Minute, 100, 1, 0, "", "", "3000,235", false); err == nil {
		t.Error("descending ladder accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "NOPE", 4000, "constant", 3, time.Minute, 100, 1, 0, "", "", "", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&out, "BBA-0", 4000, "wormhole", 3, time.Minute, 100, 1, 0, "", "", "", false); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(&out, "BBA-0", 4000, "constant", 3, time.Minute, 100, 1, 0, "/nonexistent.csv", "", "", false); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunTraceFileAndChunkCSV(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(traceFile, []byte("60.0,4000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	chunkFile := filepath.Join(dir, "chunks.csv")
	var out bytes.Buffer
	if err := run(&out, "BBA-1", 0, "", 0, 2*time.Minute, 200, 1, 560, traceFile, chunkFile, "", true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chunkFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "start_s,index,") {
		t.Error("chunk CSV malformed")
	}
}
