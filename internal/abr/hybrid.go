package abr

import (
	"time"

	"bba/internal/units"
)

var _ CapacitySeeded = (*Hybrid)(nil)

// Hybrid switches signal by regime, the design dash.js ships as DYNAMIC:
// while the buffer is below SwitchBuffer the throughput rule decides — a
// thin buffer carries little information and the estimate is the only way
// to ramp quickly — and once the buffer clears SwitchBuffer the buffer-based
// BOLA controller takes over, where occupancy is the more reliable signal.
// This is the same division of labour as BBA-2's startup/steady-state split,
// reached from the capacity-estimation side, which makes it the natural
// third rival for the arena: it brackets the design space between the pure
// throughput rule and the pure buffer rules.
//
// The throughput estimator observes every chunk even while BOLA is in
// charge, so a drop back below SwitchBuffer resumes with a warm window.
type Hybrid struct {
	// SwitchBuffer is the occupancy at and above which BOLA decides.
	SwitchBuffer time.Duration

	tput *SmoothThroughput
	bola *BOLA
}

// NewHybrid returns the combined controller with its components at their
// published defaults and a 10 s handover buffer.
func NewHybrid() *Hybrid {
	return &Hybrid{
		SwitchBuffer: 10 * time.Second,
		tput:         NewSmoothThroughput(),
		bola:         NewBOLA(),
	}
}

// Name implements Algorithm.
func (h *Hybrid) Name() string { return "Hybrid" }

// SeedCapacity implements CapacitySeeded: history primes the throughput leg.
func (h *Hybrid) SeedCapacity(r units.BitRate) { h.tput.SeedCapacity(r) }

// Next implements Algorithm.
func (h *Hybrid) Next(st State, s Stream) int {
	h.tput.Observe(st.LastThroughput)
	if st.Buffer >= h.SwitchBuffer {
		return h.bola.Next(st, s)
	}
	est := h.tput.Estimate()
	if est == 0 {
		return 0
	}
	// Below the handover buffer the throughput rule is already the
	// conservative regime; its safety factor is the only cap needed.
	return s.Ladder().HighestAtMost(est)
}
