package abtest

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/player"
	"bba/internal/stats"
	"bba/internal/telemetry"
)

// Group is one experiment arm: a name and a per-session algorithm factory.
// The factory receives the session's user so estimator-based algorithms can
// be seeded with the user's stored throughput history, as in production.
type Group struct {
	Name string
	New  func(u User) abr.Algorithm
}

// StandardGroups returns the arms used across the paper's three
// experiments: the production Control, the R_min Always lower bound, and
// the four buffer-based algorithms.
func StandardGroups() []Group {
	return []Group{
		{Name: "Control", New: func(u User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{Name: "Rmin Always", New: func(User) abr.Algorithm { return abr.RminAlways{} }},
		{Name: "BBA-0", New: func(User) abr.Algorithm { return abr.NewBBA0() }},
		{Name: "BBA-1", New: func(User) abr.Algorithm { return abr.NewBBA1() }},
		{Name: "BBA-2", New: func(User) abr.Algorithm { return abr.NewBBA2() }},
		{Name: "BBA-Others", New: func(User) abr.Algorithm { return abr.NewBBAOthers() }},
	}
}

// Config describes one experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Days of simulated viewing (the paper's weekends span 3–4 days).
	Days int
	// SessionsPerWindow is the number of paired sessions per two-hour
	// window per day (each session is streamed once per group).
	SessionsPerWindow int
	// Groups are the experiment arms; empty means StandardGroups.
	Groups []Group
	// Population tunes the synthetic user population.
	Population PopulationConfig
	// CatalogSize is the number of titles (default 24).
	CatalogSize int
	// Ladder is the encoding ladder (default media.DefaultLadder).
	Ladder media.Ladder
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
	// Observer, when non-nil, receives every session's telemetry events.
	// Each worker-owned session records into its own telemetry.Capture
	// (stamped "d<day>.w<window>.s<index>.<group>"), and the captures are
	// replayed into Observer in deterministic (session, group) order
	// after the workers finish — so the merged stream is identical
	// regardless of Parallelism. Nil disables capture entirely.
	Observer telemetry.Observer
}

func (c *Config) applyDefaults() {
	if c.Days <= 0 {
		c.Days = 3
	}
	if c.SessionsPerWindow <= 0 {
		c.SessionsPerWindow = 40
	}
	if len(c.Groups) == 0 {
		c.Groups = StandardGroups()
	}
	if c.CatalogSize <= 0 {
		c.CatalogSize = 24
	}
	if c.Ladder == nil {
		c.Ladder = media.DefaultLadder()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Outcome is the aggregated result of an experiment.
type Outcome struct {
	// Windows holds each group's per-two-hour-window aggregates.
	Windows map[string][]metrics.Window
	// Sessions holds each group's raw per-session metrics, for
	// significance testing.
	Sessions map[string][]metrics.Session
}

// Run executes the experiment: for every day × window × session draw one
// user (with trace and title) and stream that identical session once per
// group. It is deterministic given cfg.Seed and parallelises across
// sessions.
func Run(cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	catalog, err := media.NewCatalog(cfg.CatalogSize, cfg.Ladder, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type job struct {
		day, window, i int
	}
	type sessionSet struct {
		idx     int // global session index for deterministic assembly
		metrics []metrics.Session
		events  [][]telemetry.Event // per group, when cfg.Observer != nil
		err     error
	}

	var jobs []job
	for day := 0; day < cfg.Days; day++ {
		for w := 0; w < metrics.WindowsPerDay; w++ {
			for i := 0; i < cfg.SessionsPerWindow; i++ {
				jobs = append(jobs, job{day, w, i})
			}
		}
	}

	results := make([]sessionSet, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for idx, j := range jobs {
		wg.Add(1)
		go func(idx int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[idx] = sessionSet{idx: idx}
			ms, evs, err := runPairedSession(cfg, catalog, j.day, j.window, j.i)
			results[idx].metrics = ms
			results[idx].events = evs
			results[idx].err = err
		}(idx, j)
	}
	wg.Wait()

	out := &Outcome{
		Windows:  make(map[string][]metrics.Window, len(cfg.Groups)),
		Sessions: make(map[string][]metrics.Session, len(cfg.Groups)),
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for gi, g := range cfg.Groups {
			out.Sessions[g.Name] = append(out.Sessions[g.Name], r.metrics[gi])
		}
		// Replay captured telemetry in job order, group order: the merged
		// stream is byte-for-byte independent of worker scheduling.
		for _, groupEvents := range r.events {
			for _, e := range groupEvents {
				cfg.Observer.OnEvent(e)
			}
		}
	}
	for _, g := range cfg.Groups {
		ws, err := metrics.Aggregate(out.Sessions[g.Name])
		if err != nil {
			return nil, err
		}
		out.Windows[g.Name] = ws
	}
	return out, nil
}

// runPairedSession draws one user and streams the identical session once
// per group, returning one metrics.Session per group in group order, plus
// per-group captured telemetry when the experiment carries an observer.
func runPairedSession(cfg Config, catalog *media.Catalog, day, window, i int) ([]metrics.Session, [][]telemetry.Event, error) {
	rng := sessionRNG(cfg.Seed, day, window, i)
	u := DrawUser(cfg.Population, window, day, rng)
	video := u.Pick(catalog)
	stream := abr.NewStream(video, u.Rmin)

	ms := make([]metrics.Session, len(cfg.Groups))
	var evs [][]telemetry.Event
	if cfg.Observer != nil {
		evs = make([][]telemetry.Event, len(cfg.Groups))
	}
	for gi, g := range cfg.Groups {
		var rec *telemetry.Capture
		pc := player.Config{
			Algorithm:  g.New(u),
			Stream:     stream,
			Trace:      u.Trace,
			WatchLimit: u.WatchTime,
		}
		if cfg.Observer != nil {
			rec = &telemetry.Capture{Session: fmt.Sprintf("d%d.w%02d.s%03d.%s", day, window, i, g.Name)}
			pc.Observer = rec
		}
		res, err := player.Run(pc)
		if err != nil {
			return nil, nil, fmt.Errorf("abtest: day %d window %d session %d group %s: %w", day, window, i, g.Name, err)
		}
		ms[gi] = metrics.FromResult(res, window, day)
		if rec != nil {
			evs[gi] = rec.Events
		}
	}
	return ms, evs, nil
}

// WriteCSV emits every group's per-window aggregates as CSV, one row per
// (group, window), for external plotting:
//
//	group,window,sessions,playhours,rebuffers_per_playhour,avg_rate_kbps,
//	steady_rate_kbps,switches_per_playhour,rebuffer_stddev_across_days,
//	qoe_per_playhour
func (o *Outcome) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "group,window,sessions,playhours,rebuffers_per_playhour,avg_rate_kbps,steady_rate_kbps,switches_per_playhour,rebuffer_stddev_across_days,qoe_per_playhour"); err != nil {
		return err
	}
	groups := make([]string, 0, len(o.Windows))
	for g := range o.Windows {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		for _, win := range o.Windows[g] {
			if _, err := fmt.Fprintf(bw, "%s,%d,%d,%.3f,%.4f,%.1f,%.1f,%.2f,%.4f,%.1f\n",
				g, win.Index, win.Sessions, win.PlayHours,
				win.RebuffersPerPlayhour, win.AvgRateKbps, win.SteadyRateKbps,
				win.SwitchesPerPlayhour, win.RebufferRateStdDev, win.QoEPerPlayhour); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RebufferSamples returns a group's per-session rebuffers-per-playhour
// samples, optionally restricted to a window set (nil = all windows).
func (o *Outcome) RebufferSamples(group string, windows map[int]bool) []float64 {
	var xs []float64
	for _, s := range o.Sessions[group] {
		if windows != nil && !windows[s.Window] {
			continue
		}
		if s.PlayHours > 0 {
			xs = append(xs, float64(s.Rebuffers)/s.PlayHours)
		}
	}
	return xs
}

// SignificanceRebuffers runs a Welch t-test on per-session rebuffer rates
// of two groups restricted to a window set — the test behind the paper's
// footnotes 4 and 5 ("the hypothesis ... is not rejected at the 95%
// confidence level").
func (o *Outcome) SignificanceRebuffers(groupA, groupB string, windows map[int]bool) (stats.TTestResult, error) {
	collect := func(name string) []float64 {
		var xs []float64
		for _, s := range o.Sessions[name] {
			if windows != nil && !windows[s.Window] {
				continue
			}
			if s.PlayHours > 0 {
				xs = append(xs, float64(s.Rebuffers)/s.PlayHours)
			}
		}
		return xs
	}
	return stats.WelchTTest(collect(groupA), collect(groupB))
}
