// Package arena runs N-way paired tournaments between registered ABR
// algorithms: every entrant plays the same (user, trace, fault-weather)
// draw for every seed, so head-to-head differences are pure algorithm
// effects — the paper's paired A/B design generalized from arms-vs-control
// to a full round-robin.
//
// The arena is a thin composition over the campaign layer: entrants become
// campaign groups (so the per-entrant marginals are ordinary GroupReports),
// and the pairwise state rides the campaign's Extra extension point — per
// shard, folded in shard-index order — so arena reports inherit the
// campaign's guarantee of being byte-identical at any worker count.
package arena

import (
	"fmt"

	"bba/internal/campaign"
	"bba/internal/metrics"
	"bba/internal/stats"
)

// maxEntrants bounds the field so a pair index always fits the 8 low bits
// of a sketch key (23 entrants → 253 pairs), mirroring the campaign's
// (global<<8 | group) keying.
const maxEntrants = 23

// PairAccum is one head-to-head pairing's constant-memory aggregate: win
// counts by session QoE and per-session A−B delta distributions for the
// paper's metric set. Because both sessions of a delta share their draw,
// the common-random-numbers variance cancellation applies: delta CIs are
// far tighter than differencing the two marginal summaries would be.
type PairAccum struct {
	A        string `json:"a"`
	B        string `json:"b"`
	Sessions int64  `json:"sessions"`
	// WinsA/WinsB/Ties compare total session QoE (both arms stream the
	// same watch budget, so totals are commensurable).
	WinsA int64 `json:"wins_a"`
	WinsB int64 `json:"wins_b"`
	Ties  int64 `json:"ties"`
	// The per-session A−B deltas. Rate deltas cover every paired session;
	// the per-playhour deltas cover sessions where both arms played.
	DQoERate     stats.Dist `json:"d_qoe_per_playhour"`
	DRebufRate   stats.Dist `json:"d_rebuffer_rate"`
	DAvgRate     stats.Dist `json:"d_avg_rate_kbps"`
	DSwitchRate  stats.Dist `json:"d_switch_rate"`
	DStartupRate stats.Dist `json:"d_startup_rate_kbps"`
}

func newPairAccum(a, b string, sketchSize int) *PairAccum {
	return &PairAccum{
		A: a, B: b,
		DQoERate:     stats.NewDist(sketchSize),
		DRebufRate:   stats.NewDist(sketchSize),
		DAvgRate:     stats.NewDist(sketchSize),
		DSwitchRate:  stats.NewDist(sketchSize),
		DStartupRate: stats.NewDist(sketchSize),
	}
}

// add folds one paired draw's two sessions in, keyed uniquely by the draw.
func (p *PairAccum) add(key uint64, a, b metrics.Session) error {
	p.Sessions++
	switch {
	case a.QoE > b.QoE:
		p.WinsA++
	case a.QoE < b.QoE:
		p.WinsB++
	default:
		p.Ties++
	}
	if err := distAdd(&p.DAvgRate, a.AvgRateKbps-b.AvgRateKbps, key); err != nil {
		return err
	}
	if a.StartupRateKbps > 0 && b.StartupRateKbps > 0 {
		if err := distAdd(&p.DStartupRate, a.StartupRateKbps-b.StartupRateKbps, key); err != nil {
			return err
		}
	}
	if a.PlayHours > 0 && b.PlayHours > 0 {
		if err := distAdd(&p.DQoERate, a.QoE/a.PlayHours-b.QoE/b.PlayHours, key); err != nil {
			return err
		}
		if err := distAdd(&p.DRebufRate, float64(a.Rebuffers)/a.PlayHours-float64(b.Rebuffers)/b.PlayHours, key); err != nil {
			return err
		}
		if err := distAdd(&p.DSwitchRate, float64(a.Switches)/a.PlayHours-float64(b.Switches)/b.PlayHours, key); err != nil {
			return err
		}
	}
	return nil
}

// distAdd mirrors the campaign's fold tolerance: the explicit non-finite
// filter is counted inside the Dist, real errors propagate.
func distAdd(d *stats.Dist, x float64, key uint64) error {
	if err := d.Add(x, key); err != nil && err != stats.ErrNonFinite {
		return err
	}
	return nil
}

func (p *PairAccum) merge(o *PairAccum) error {
	if p.A != o.A || p.B != o.B {
		return fmt.Errorf("arena: merging pair %s/%s into %s/%s", o.A, o.B, p.A, p.B)
	}
	p.Sessions += o.Sessions
	p.WinsA += o.WinsA
	p.WinsB += o.WinsB
	p.Ties += o.Ties
	for _, m := range []struct {
		dst *stats.Dist
		src stats.Dist
	}{
		{&p.DQoERate, o.DQoERate},
		{&p.DRebufRate, o.DRebufRate},
		{&p.DAvgRate, o.DAvgRate},
		{&p.DSwitchRate, o.DSwitchRate},
		{&p.DStartupRate, o.DStartupRate},
	} {
		if err := m.dst.Merge(m.src); err != nil {
			return fmt.Errorf("arena: pair %s vs %s: %w", p.A, p.B, err)
		}
	}
	return nil
}

// MatchSet is the tournament's campaign.Extra: one PairAccum per unordered
// entrant pair (i<j), in lexicographic index order. Each shard owns a fresh
// MatchSet; the campaign folds them in shard-index order.
type MatchSet struct {
	names []string
	pairs []*PairAccum
}

// NewMatchSet returns the empty pairwise state for the named entrants.
func NewMatchSet(names []string, sketchSize int) *MatchSet {
	m := &MatchSet{names: names}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			m.pairs = append(m.pairs, newPairAccum(names[i], names[j], sketchSize))
		}
	}
	return m
}

// Pairs returns the pairings in their canonical (i<j, lexicographic index)
// order.
func (m *MatchSet) Pairs() []*PairAccum { return m.pairs }

// AddSessionSet implements campaign.Extra: ms holds one session per entrant
// in entrant order; every unordered pair folds its delta, keyed by
// (global draw, pair index) exactly as the campaign keys (draw, group).
func (m *MatchSet) AddSessionSet(global int64, ms []metrics.Session) error {
	if len(ms) != len(m.names) {
		return fmt.Errorf("arena: %d sessions for %d entrants", len(ms), len(m.names))
	}
	pi := 0
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			key := uint64(global)<<8 | uint64(pi&0xFF)
			if err := m.pairs[pi].add(key, ms[i], ms[j]); err != nil {
				return err
			}
			pi++
		}
	}
	return nil
}

// Merge implements campaign.Extra.
func (m *MatchSet) Merge(o campaign.Extra) error {
	om, ok := o.(*MatchSet)
	if !ok {
		return fmt.Errorf("arena: merging %T into MatchSet", o)
	}
	if len(om.pairs) != len(m.pairs) {
		return fmt.Errorf("arena: merging %d pairs into %d", len(om.pairs), len(m.pairs))
	}
	for i := range m.pairs {
		if err := m.pairs[i].merge(om.pairs[i]); err != nil {
			return err
		}
	}
	return nil
}
