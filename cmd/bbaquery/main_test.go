package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/archive"
	"bba/internal/telemetry"
	"bba/internal/units"
)

// fixtureStore writes a small two-group run into a block directory and
// returns the directory plus the run's canonical journal.
func fixtureStore(t *testing.T) (dir string, journal []byte) {
	t.Helper()
	dir = t.TempDir()
	st, err := archive.Open(archive.Config{Dir: dir, CompactEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	var batch []byte
	for i := 0; i < 24; i++ {
		kind := telemetry.ChunkComplete
		if i%6 == 5 {
			kind = telemetry.RebufferStart
		}
		batch = telemetry.AppendJSONL(batch[:0], telemetry.Event{
			Kind: kind, Session: fmt.Sprintf("d0.w0.s%d.BBA-%d", i, i%2),
			At: time.Duration(i) * time.Second, Chunk: i,
			RateIndex: -1, PrevRateIndex: -1, Rate: units.BitRate(1000 + i),
		})
		journal = append(journal, batch...)
		if err := st.Append("q", batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, journal
}

func runCLI(t *testing.T, o options) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), &out, o); err != nil {
		t.Fatalf("bbaquery %+v: %v", o, err)
	}
	return out.String()
}

func TestQueryOffline(t *testing.T) {
	dir, journal := fixtureStore(t)

	// -export reproduces the admitted journal byte-for-byte.
	if got := runCLI(t, options{dir: dir, run: "q", export: true}); got != string(journal) {
		t.Fatalf("export:\n%q\nwant:\n%q", got, journal)
	}
	// A full scan re-renders the same canonical lines.
	if got := runCLI(t, options{dir: dir, run: "q", limit: 1000}); got != string(journal) {
		t.Fatalf("scan differs from journal:\n%q", got)
	}
	// Predicates narrow it: 4 rebuffer_start rows, 12 group-BBA-1 rows.
	if got := runCLI(t, options{dir: dir, run: "q", kinds: "rebuffer_start", limit: 1000}); strings.Count(got, "\n") != 4 {
		t.Fatalf("kind filter: %q", got)
	}
	if got := runCLI(t, options{dir: dir, run: "q", group: "BBA-1", limit: 1000}); strings.Count(got, "\n") != 12 {
		t.Fatalf("group filter: %q", got)
	}
	if got := runCLI(t, options{dir: dir, run: "q", fromNS: int64(20 * time.Second), limit: 1000}); strings.Count(got, "\n") != 4 {
		t.Fatalf("from filter: %q", got)
	}
	if got := runCLI(t, options{dir: dir, run: "q", limit: 3}); strings.Count(got, "\n") != 3 {
		t.Fatalf("limit: %q", got)
	}

	// -agg returns the rollup; -runs lists the run.
	var rollup archive.Rollup
	if err := json.Unmarshal([]byte(runCLI(t, options{dir: dir, run: "q", agg: true})), &rollup); err != nil {
		t.Fatal(err)
	}
	if rollup.Run != "q" || rollup.Rows != 24 || len(rollup.Groups) != 2 {
		t.Fatalf("rollup: %+v", rollup)
	}
	if got := runCLI(t, options{dir: dir, runs: true}); !strings.Contains(got, `"run": "q"`) {
		t.Fatalf("runs: %q", got)
	}
}

func TestQueryLive(t *testing.T) {
	dir, journal := fixtureStore(t)
	st, err := archive.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mux := http.NewServeMux()
	archive.QueryHandler{Store: st}.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if got := runCLI(t, options{url: srv.URL, run: "q", limit: 1000}); got != string(journal) {
		t.Fatalf("live scan:\n%q", got)
	}
	var rollup archive.Rollup
	if err := json.Unmarshal([]byte(runCLI(t, options{url: srv.URL, run: "q", agg: true})), &rollup); err != nil {
		t.Fatal(err)
	}
	if rollup.Rows != 24 {
		t.Fatalf("live rollup: %+v", rollup)
	}
	if got := runCLI(t, options{url: srv.URL, runs: true}); !strings.Contains(got, `"run":"q"`) {
		t.Fatalf("live runs: %q", got)
	}
	// Errors surface with the HTTP status attached.
	if err := run(context.Background(), new(bytes.Buffer), options{url: srv.URL, run: "nope", agg: true}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown run: %v", err)
	}
}

func TestQueryFlagValidation(t *testing.T) {
	for _, o := range []options{
		{},                               // neither -dir nor -url
		{dir: "x", url: "y"},             // both
		{dir: "x"},                       // no -run
		{dir: "x", run: "r", tail: true}, // tail offline
		{dir: t.TempDir(), run: "r", kinds: "bogus"}, // bad kind
		{url: "http://0", run: "r", kinds: "bogus"},  // bad kind, live
	} {
		if err := run(context.Background(), new(bytes.Buffer), o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}
