package abr

import (
	"testing"
	"time"

	"bba/internal/units"
)

func bba0Shape(buffer, bufferMax time.Duration) units.BitRate {
	m := RateMap{
		Rmin:      235 * units.Kbps,
		Rmax:      5000 * units.Kbps,
		Reservoir: 90 * time.Second,
		Cushion:   time.Duration(0.9*float64(bufferMax)) - 90*time.Second,
	}
	return m.Rate(buffer)
}

func TestCustomMatchesBBA0OnSameMap(t *testing.T) {
	// A Custom algorithm running BBA-0's exact map must make BBA-0's
	// decisions chunk for chunk (the region shortcuts in Algorithm 1 are
	// implied by the pinned map).
	s := cbrStream(t)
	custom := NewCustom("custom-bba0", bba0Shape)
	reference := NewBBA0()
	for b := time.Duration(0); b <= 240*time.Second; b += 2 * time.Second {
		st := stateAt(b, 0, int(b/(4*time.Second)))
		// Drive both from the same externally-imposed prev sequence.
		cGot := custom.Next(st, s)
		rGot := reference.Next(st, s)
		if cGot != rGot {
			t.Fatalf("B=%v: custom chose %d, BBA-0 chose %d", b, cGot, rGot)
		}
		// Re-sync internal prevs so the walk stays aligned.
		custom.prev = rGot
		reference.prev = rGot
	}
}

func TestCustomName(t *testing.T) {
	if got := NewCustom("", bba0Shape).Name(); got != "Custom" {
		t.Errorf("default name = %q", got)
	}
	if got := NewCustom("mine", bba0Shape).Name(); got != "mine" {
		t.Errorf("name = %q", got)
	}
}

func TestCustomClampsOutOfBandMaps(t *testing.T) {
	s := cbrStream(t)
	wild := NewCustom("wild", func(b, _ time.Duration) units.BitRate {
		return 50 * units.Mbps // far above the ladder
	})
	got := wild.Next(stateAt(100*time.Second, -1, 0), s)
	if got != len(s.Ladder())-1 {
		t.Errorf("clamped pick = %d, want top", got)
	}
	floor := NewCustom("floor", func(b, _ time.Duration) units.BitRate {
		return 0
	})
	if got := floor.Next(stateAt(100*time.Second, -1, 0), s); got != 0 {
		t.Errorf("floored pick = %d, want 0", got)
	}
}

func TestCustomSticky(t *testing.T) {
	// A map value sitting between two rungs must not flap.
	s := cbrStream(t)
	c := NewCustom("steady", func(b, _ time.Duration) units.BitRate {
		return 1200 * units.Kbps // between 1050 and 1750
	})
	first := c.Next(stateAt(100*time.Second, -1, 0), s)
	for i := 1; i < 20; i++ {
		if got := c.Next(stateAt(100*time.Second, first, i), s); got != first {
			t.Fatalf("flapped from %d to %d", first, got)
		}
	}
}
