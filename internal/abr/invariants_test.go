package abr

// Session-level invariant harness: every algorithm is driven through
// randomized full sessions (random VBR titles, random decision inputs that
// follow plausible buffer dynamics) and checked against the invariants its
// design promises. This complements the scenario tests: the harness does
// not know what a good decision is, only what can never happen.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// driveSession feeds an algorithm a random but dynamically consistent
// decision sequence and calls check after every decision.
func driveSession(t *testing.T, seed int64, alg Algorithm, check func(step int, st State, decision int)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(v, 0)
	const bufferMax = 240 * time.Second

	buffer := time.Duration(0)
	prev := -1
	var lastDl time.Duration
	var lastTP units.BitRate
	for k := 0; k < 300; k++ {
		st := State{
			Now:            time.Duration(k) * 4 * time.Second,
			Buffer:         buffer,
			BufferMax:      bufferMax,
			PrevIndex:      prev,
			NextChunk:      k,
			LastDownload:   lastDl,
			LastThroughput: lastTP,
		}
		decision := alg.Next(st, s)
		if decision < 0 || decision >= len(s.Ladder()) {
			t.Fatalf("step %d: decision %d outside the ladder", k, decision)
		}
		check(k, st, decision)

		// Plausible dynamics: the chunk downloads at a random capacity;
		// buffer adjusts accordingly and stays in range.
		capacity := units.BitRate(200+rng.Intn(8000)) * units.Kbps
		size := s.ChunkSize(decision, k)
		lastDl = capacity.DurationFor(size)
		lastTP = capacity
		buffer += 4*time.Second - lastDl
		if buffer < 0 {
			buffer = 0
		}
		if buffer > bufferMax {
			buffer = bufferMax
		}
		prev = decision
	}
}

// BBA-0's invariants: R_min inside the reservoir, R_max in the upper
// reservoir, and single-rung hysteresis (never skipping more than the map
// suggests while inside the cushion).
func TestQuickInvariantsBBA0(t *testing.T) {
	f := func(seed int64) bool {
		alg := NewBBA0()
		ok := true
		driveSession(t, seed, alg, func(step int, st State, decision int) {
			if st.PrevIndex < 0 {
				return
			}
			if st.Buffer <= alg.Reservoir && decision != 0 {
				ok = false
			}
			if st.Buffer >= time.Duration(alg.RampEndFraction*float64(st.BufferMax)) && decision != 9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BBA-1's invariants: R_min whenever the buffer is inside the (dynamic,
// protection-shifted) reservoir.
func TestQuickInvariantsBBA1(t *testing.T) {
	f := func(seed int64) bool {
		alg := NewBBA1()
		ok := true
		driveSession(t, seed, alg, func(step int, st State, decision int) {
			if st.PrevIndex < 0 {
				return
			}
			// The minimum possible reservoir is the clamp floor; below
			// it the decision must be R_min regardless of protection.
			if st.Buffer <= MinReservoir && decision != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BBA-2's invariants: during startup the rate climbs at most one rung per
// decision and never goes down; startup, once exited, never re-enters
// (absent a seek).
func TestQuickInvariantsBBA2(t *testing.T) {
	f := func(seed int64) bool {
		alg := NewBBA2()
		ok := true
		exited := false
		driveSession(t, seed, alg, func(step int, st State, decision int) {
			inStartup := alg.InStartup()
			if exited && inStartup {
				ok = false // re-entered without a seek
			}
			if !inStartup {
				exited = true
			}
			if inStartup && st.PrevIndex >= 0 && decision > st.PrevIndex+1 {
				ok = false // startup must climb one rung at a time
			}
			if inStartup && st.PrevIndex >= 0 && decision < st.PrevIndex {
				ok = false // startup never steps down
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BBA-Others' invariants: the effective reservoir never shrinks, never
// exceeds the clamp, and protection is never negative.
func TestQuickInvariantsBBAOthers(t *testing.T) {
	f := func(seed int64) bool {
		alg := NewBBAOthers()
		ok := true
		last := time.Duration(0)
		driveSession(t, seed, alg, func(step int, st State, decision int) {
			r := alg.EffectiveReservoir()
			if r < last || r > MaxReservoir {
				ok = false
			}
			last = r
			if alg.Protection() < 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Control's invariants: the panic floor always yields R_min, and the
// estimate is always positive once seeded.
func TestQuickInvariantsControl(t *testing.T) {
	f := func(seed int64) bool {
		alg := NewControl()
		alg.InitialEstimate = 3 * units.Mbps
		ok := true
		driveSession(t, seed, alg, func(step int, st State, decision int) {
			if st.PrevIndex >= 0 && st.Buffer < alg.PanicBuffer && decision != 0 {
				ok = false
			}
			if step > 0 && alg.Estimate() <= 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The related-work controllers share the ladder-validity and panic
// invariants.
func TestQuickInvariantsRelatedWork(t *testing.T) {
	mk := map[string]func() Algorithm{
		"PID":     func() Algorithm { return NewBufferTarget() },
		"ELASTIC": func() Algorithm { return NewElastic() },
	}
	for name, factory := range mk {
		name, factory := name, factory
		f := func(seed int64) bool {
			alg := factory()
			ok := true
			driveSession(t, seed, alg, func(step int, st State, decision int) {
				if st.PrevIndex >= 0 && st.Buffer < 15*time.Second && decision != 0 {
					ok = false
				}
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
