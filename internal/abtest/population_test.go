package abtest

import (
	"math/rand"
	"testing"
	"time"

	"bba/internal/stats"
	"bba/internal/units"
)

func TestDiurnalHarshness(t *testing.T) {
	for w := 0; w < 12; w++ {
		h := DiurnalHarshness(w)
		if h < 0 || h > 1 {
			t.Errorf("window %d: harshness %v outside [0,1]", w, h)
		}
	}
	// Peak (US evening, 0-6 GMT) harsher than the overnight lull.
	if DiurnalHarshness(0) <= DiurnalHarshness(4) {
		t.Error("peak window not harsher than off-peak")
	}
	if DiurnalHarshness(-1) != 0.5 || DiurnalHarshness(12) != 0.5 {
		t.Error("out-of-range windows should get the neutral default")
	}
}

func TestDrawUserRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		u := DrawUser(PopulationConfig{}, i%12, 0, rng)
		if u.BaseCapacity < 500*units.Kbps || u.BaseCapacity > 60*units.Mbps {
			t.Fatalf("base capacity %v out of range", u.BaseCapacity)
		}
		if u.WatchTime < 5*time.Minute || u.WatchTime > 3*time.Hour {
			t.Fatalf("watch time %v out of range", u.WatchTime)
		}
		if u.Rmin != 235*units.Kbps && u.Rmin != 560*units.Kbps {
			t.Fatalf("Rmin %v is neither 235 nor 560 kb/s", u.Rmin)
		}
		if u.Trace == nil || u.Trace.Total() < u.WatchTime {
			t.Fatal("trace missing or shorter than the session")
		}
		if u.Sigma <= 0 {
			t.Fatalf("sigma %v", u.Sigma)
		}
	}
}

func TestDrawUserDeterministic(t *testing.T) {
	a := DrawUser(PopulationConfig{}, 0, 0, rand.New(rand.NewSource(9)))
	b := DrawUser(PopulationConfig{}, 0, 0, rand.New(rand.NewSource(9)))
	if a.BaseCapacity != b.BaseCapacity || a.WatchTime != b.WatchTime ||
		a.TitleIndex != b.TitleIndex || a.Rmin != b.Rmin {
		t.Error("same-seed users differ")
	}
	sa, sb := a.Trace.Segments(), b.Trace.Segments()
	if len(sa) != len(sb) {
		t.Fatal("same-seed traces differ in length")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same-seed traces differ")
		}
	}
}

func TestRminPromotionFollowsHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := PopulationConfig{}
	promoted, total := 0, 400
	for i := 0; i < total; i++ {
		u := DrawUser(cfg, 0, 0, rng)
		threshold := 1500 * units.Kbps
		if (u.History >= threshold) != (u.Rmin == 560*units.Kbps) {
			t.Fatalf("promotion inconsistent: history %v, Rmin %v", u.History, u.Rmin)
		}
		if u.Rmin == 560*units.Kbps {
			promoted++
		}
	}
	// "Most customers can sustain 560kb/s": the majority is promoted.
	if promoted < total/2 {
		t.Errorf("only %d/%d promoted; footnote 3 says most", promoted, total)
	}
}

// Section 1–2 calibration. The paper's statistics are all-day averages
// over 300k sessions: ~10% with median throughput below half the 95th
// percentile, ~10% with Figure 1-level quartile ratios and 22% with half
// that. Our population concentrates variability at peak (that is where the
// paper's effects live), so the calibration check is:
//
//   - the Figure 1-like tail exists in every window (≥ the paper's 10% at
//     peak, and present but small off-peak), and
//   - the quiet overnight windows are much more stable than peak.
func TestPopulationVariabilityCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	frac := func(window int) (figure1, highQuartile float64) {
		const n = 250
		var f1, hq int
		for i := 0; i < n; i++ {
			u := DrawUser(PopulationConfig{}, window, 0, rng)
			rates := u.Trace.Rates(time.Second)
			m95, err := stats.MedianTo95Ratio(rates)
			if err != nil {
				t.Fatal(err)
			}
			if m95 < 0.5 {
				f1++
			}
			if qr, _ := stats.QuartileRatio(rates); qr >= 2.8 {
				hq++
			}
		}
		return float64(f1) / n, float64(hq) / n
	}
	peakF1, peakHQ := frac(0) // US evening peak
	offF1, offHQ := frac(4)   // overnight lull
	if peakF1 < 0.10 {
		t.Errorf("peak Figure 1-like fraction = %.2f, want at least the paper's 0.10", peakF1)
	}
	if peakHQ < 0.10 {
		t.Errorf("peak quartile-ratio tail = %.2f, want ≥ 0.10", peakHQ)
	}
	if offF1 >= peakF1 {
		t.Errorf("off-peak variability (%.2f) not below peak (%.2f)", offF1, peakF1)
	}
	if offHQ >= peakHQ {
		t.Errorf("off-peak quartile tail (%.2f) not below peak (%.2f)", offHQ, peakHQ)
	}
	if offF1 > 0.45 {
		t.Errorf("off-peak Figure 1-like fraction = %.2f; overnight should be mostly stable", offF1)
	}
}

func TestApplyOverridesDropsCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := DrawUser(PopulationConfig{OutageProb: 1e-9, FadesPerHour: 20}, 0, 0, rng)
	// Many fades were requested; colliding ones must have been dropped,
	// leaving a valid trace covering the session.
	if u.Trace.Total() < u.WatchTime {
		t.Error("override application corrupted the trace length")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if poisson(0, rng) != 0 || poisson(-1, rng) != 0 {
		t.Error("non-positive mean should yield 0")
	}
	var sum int
	const n = 2000
	for i := 0; i < n; i++ {
		sum += poisson(2.5, rng)
	}
	mean := float64(sum) / n
	if mean < 2.3 || mean > 2.7 {
		t.Errorf("poisson mean = %v, want ≈2.5", mean)
	}
}

func TestSessionRNGSeparation(t *testing.T) {
	// Neighbouring coordinates must produce unrelated streams.
	a := sessionRNG(1, 0, 0, 0).Int63()
	b := sessionRNG(1, 0, 0, 1).Int63()
	c := sessionRNG(1, 0, 1, 0).Int63()
	d := sessionRNG(1, 1, 0, 0).Int63()
	e := sessionRNG(2, 0, 0, 0).Int63()
	seen := map[int64]bool{a: true}
	for _, v := range []int64{b, c, d, e} {
		if seen[v] {
			t.Fatal("session RNG streams collide")
		}
		seen[v] = true
	}
	// And identical coordinates reproduce.
	if sessionRNG(1, 2, 3, 4).Int63() != sessionRNG(1, 2, 3, 4).Int63() {
		t.Error("session RNG not deterministic")
	}
}
