package collect

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/telemetry"
)

// eventsPayload renders n telemetry events as a journal JSONL batch.
func eventsPayload(n int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		b = telemetry.AppendJSONL(b, telemetry.Event{
			Kind: telemetry.BufferSample, Session: "s", Chunk: i,
			RateIndex: -1, PrevRateIndex: -1, Buffer: 3 * time.Second,
		})
	}
	return b
}

func TestCollectorIngestEvents(t *testing.T) {
	var archive bytes.Buffer
	c := NewCollector(CollectorConfig{Archive: WriterArchiver{W: &archive}})
	f1 := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadEvents, Payload: eventsPayload(3)})
	f2 := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 1, Kind: PayloadEvents, Payload: eventsPayload(2)})
	for _, f := range [][]byte{f1, f2, f1, f2, f1} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	s := c.Stats()
	if s.Events != 5 || s.Frames["events"] != 2 || s.FramesDup != 3 {
		t.Fatalf("stats %+v: duplicates must not double-count", s)
	}
	// The archive holds each admitted batch exactly once, and is valid
	// journal JSONL.
	want := append(eventsPayload(3), eventsPayload(2)...)
	if !bytes.Equal(archive.Bytes(), want) {
		t.Fatalf("archive:\n%q\nwant:\n%q", archive.Bytes(), want)
	}
}

func TestCollectorIngestBad(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	if err := c.Ingest([]byte("not a frame at all")); err == nil {
		t.Fatalf("garbage ingested")
	}
	bad := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: []byte("{not json")})
	if err := c.Ingest(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad run_start payload: %v", err)
	}
	unk := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadKind(77), Payload: nil})
	if err := c.Ingest(unk); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind: %v", err)
	}
	if s := c.Stats(); s.FramesBad != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// runLocalCampaign runs cfg locally, capturing the shipped artifacts: the
// identity payload, each shard's JSON, and the canonical report bytes.
func runLocalCampaign(t *testing.T, cfg campaign.Config) (idJSON []byte, shardJSON map[int][]byte, report []byte) {
	t.Helper()
	shardJSON = make(map[int][]byte)
	cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
		p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
		if err != nil {
			return err
		}
		shardJSON[shard] = p
		return nil
	}
	out, err := campaign.Run(cfg)
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}
	if out.Report == nil {
		t.Fatalf("local campaign produced no report")
	}
	var buf bytes.Buffer
	if err := out.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	idJSON, err = json.Marshal(cfg.Identity())
	if err != nil {
		t.Fatal(err)
	}
	return idJSON, shardJSON, buf.Bytes()
}

func testCampaignConfig() campaign.Config {
	return campaign.Config{
		Name: "collect-test", Seed: 11, Sessions: 24, ShardSize: 8,
		Parallelism: 2, SketchSize: 64, CatalogSize: 6,
	}
}

func TestCollectorExactlyOnceAggregation(t *testing.T) {
	idJSON, shards, localReport := runLocalCampaign(t, testCampaignConfig())
	if len(shards) != 3 {
		t.Fatalf("campaign produced %d shards, want 3", len(shards))
	}

	c := NewCollector(CollectorConfig{})
	frame := func(seq uint64, kind PayloadKind, payload []byte) []byte {
		return AppendFrame(nil, Frame{Run: "run-11", Session: 1, Seq: seq, Kind: kind, Payload: payload})
	}
	start := frame(0, PayloadRunStart, idJSON)
	sh1 := frame(1, PayloadShard, shards[0])
	sh2 := frame(2, PayloadShard, shards[1])
	sh3 := frame(3, PayloadShard, shards[2])
	end := frame(4, PayloadRunEnd, nil)

	// A shard arriving before its run_start is a retryable NACK, not a loss.
	if err := c.Ingest(sh2); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("shard before run_start: %v", err)
	}
	// Delivery is then reordered and duplicated: every frame twice, shards
	// in reverse. The aggregate must not care.
	for _, f := range [][]byte{start, sh3, sh3, sh2, start, sh1, end, sh2, sh1, end} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}

	remote, err := c.Report("run-11")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !bytes.Equal(remote, localReport) {
		t.Fatalf("remote report differs from local:\nremote: %s\nlocal:  %s", remote, localReport)
	}
	s := c.Stats()
	if s.Shards != 3 || s.ShardsDup != 0 || s.FramesDup != 5 || s.Runs != 1 || s.RunsEnded != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCollectorCrossSessionShardDup(t *testing.T) {
	idJSON, shards, _ := runLocalCampaign(t, testCampaignConfig())
	c := NewCollector(CollectorConfig{})
	// Two sessions ship overlapping shards (a re-run after a lost process):
	// the second delivery of a shard is recognized and discarded even
	// though its (session, seq) key is fresh.
	mk := func(session, seq uint64, kind PayloadKind, payload []byte) []byte {
		return AppendFrame(nil, Frame{Run: "r", Session: session, Seq: seq, Kind: kind, Payload: payload})
	}
	for _, f := range [][]byte{
		mk(1, 0, PayloadRunStart, idJSON),
		mk(1, 1, PayloadShard, shards[0]),
		mk(2, 0, PayloadRunStart, idJSON),
		mk(2, 1, PayloadShard, shards[0]), // same shard, different session
		mk(2, 2, PayloadShard, shards[1]),
		mk(1, 2, PayloadShard, shards[2]),
		mk(1, 3, PayloadRunEnd, nil),
	} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if s := c.Stats(); s.Shards != 3 || s.ShardsDup != 1 || s.Streams != 2 {
		t.Fatalf("stats %+v", s)
	}
	if _, err := c.Report("r"); err != nil {
		t.Fatalf("report: %v", err)
	}
}

func TestCollectorRunRestartIdentityMismatch(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	id1, _ := json.Marshal(campaign.Identity{Seed: 1, Sessions: 8, ShardSize: 8, Days: 1, CatalogSize: 1, SketchSize: 8, Groups: []string{"a"}})
	id2, _ := json.Marshal(campaign.Identity{Seed: 2, Sessions: 8, ShardSize: 8, Days: 1, CatalogSize: 1, SketchSize: 8, Groups: []string{"a"}})
	if err := c.Ingest(AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: id1})); err != nil {
		t.Fatal(err)
	}
	err := c.Ingest(AppendFrame(nil, Frame{Run: "r", Session: 2, Seq: 0, Kind: PayloadRunStart, Payload: id2}))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("conflicting identity accepted: %v", err)
	}
}

func TestCollectorHandler(t *testing.T) {
	idJSON, shards, localReport := runLocalCampaign(t, testCampaignConfig())
	c := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage: %d", code)
	}
	orphan := AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 1, Kind: PayloadShard, Payload: shards[0]})
	if code := post(orphan); code != http.StatusServiceUnavailable {
		t.Fatalf("orphan shard must be retryable: %d", code)
	}
	if resp, err := http.Get(srv.URL + "/report/h"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report before run: %v %v", err, resp.Status)
	}

	frames := [][]byte{
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: idJSON}),
		orphan,
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 2, Kind: PayloadShard, Payload: shards[1]}),
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 3, Kind: PayloadShard, Payload: shards[2]}),
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 4, Kind: PayloadRunEnd, Payload: nil}),
	}
	for i, f := range frames {
		if code := post(f); code != http.StatusNoContent {
			t.Fatalf("frame %d: %d", i, code)
		}
	}

	resp, err := http.Get(srv.URL + "/report/h")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %v %v", err, resp.Status)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got.Bytes(), localReport) {
		t.Fatalf("remote report differs from local")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v", err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`bba_collect_frames_total{kind="shard"} 3`,
		"bba_collect_shards_total 3",
		"bba_collect_runs_ended_total 1",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics.String())
		}
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", err)
	}
	hresp.Body.Close()
}

// failingArchiver persists batches until failAfter calls, then fails
// every call, recording what it durably accepted.
type failingArchiver struct {
	calls     int
	failAfter int
	accepted  bytes.Buffer
}

func (a *failingArchiver) Append(run string, batch []byte) error {
	a.calls++
	if a.calls > a.failAfter {
		return errors.New("disk full")
	}
	a.accepted.Write(batch)
	return nil
}

// TestCollectorArchiveFailureNACK is the regression test for the silent
// archive-loss bug: a collector with a failing archive writer must never
// acknowledge an event frame it did not persist. Before the fix the write
// happened after the frame's seq was spent, with the error ignored — the
// frame was ACKed, the shipper moved on, and the batch was gone.
func TestCollectorArchiveFailureNACK(t *testing.T) {
	arch := &failingArchiver{failAfter: 2}
	c := NewCollector(CollectorConfig{Archive: arch})
	frame := func(seq uint64, n int) []byte {
		return AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: seq, Kind: PayloadEvents, Payload: eventsPayload(n)})
	}

	// Two frames persist and ACK.
	if err := c.Ingest(frame(0, 3)); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	if err := c.Ingest(frame(1, 2)); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	// The third write fails: the frame must be NACKed retryable, its seq
	// unspent, its events uncounted.
	err := c.Ingest(frame(2, 4))
	if !errors.Is(err, ErrArchive) || !retryable(err) {
		t.Fatalf("failed archive write: err = %v, want retryable ErrArchive", err)
	}
	// The failure is sticky: later event frames are refused without
	// touching the archiver.
	callsAfterFailure := arch.calls
	if err := c.Ingest(frame(3, 1)); !errors.Is(err, ErrArchive) {
		t.Fatalf("sticky refusal: %v", err)
	}
	if arch.calls != callsAfterFailure {
		t.Fatalf("sticky failure still called the archiver (%d -> %d calls)", callsAfterFailure, arch.calls)
	}
	// A retry of the failed frame is also NACKed — never ACKed unpersisted.
	if err := c.Ingest(frame(2, 4)); !errors.Is(err, ErrArchive) {
		t.Fatalf("retry of failed frame: %v", err)
	}
	// Reliable frames don't ride the archive lane and still work.
	idJSON, _, _ := runLocalCampaign(t, testCampaignConfig())
	if err := c.Ingest(AppendFrame(nil, Frame{Run: "r2", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: idJSON})); err != nil {
		t.Fatalf("reliable frame during archive failure: %v", err)
	}

	s := c.Stats()
	if s.Events != 5 {
		t.Fatalf("Events = %d, want 5: NACKed frames must not count", s.Events)
	}
	if s.ArchiveErrors != 3 {
		t.Fatalf("ArchiveErrors = %d, want 3 (first failure + two refusals)", s.ArchiveErrors)
	}
	want := append(eventsPayload(3), eventsPayload(2)...)
	if !bytes.Equal(arch.accepted.Bytes(), want) {
		t.Fatalf("archive holds %q, want exactly the ACKed prefix %q", arch.accepted.Bytes(), want)
	}

	// The handler surfaces all of it: 503 on the frame, degraded healthz,
	// the errors counter in /metrics.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(frame(4, 1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during archive failure: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status       string `json:"status"`
		ArchiveError string `json:"archive_error"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" || health.ArchiveError == "" {
		t.Fatalf("healthz = %d %+v, want 503 degraded with archive_error", hresp.StatusCode, health)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(metrics.String(), "bba_collect_archive_errors_total 4") {
		t.Fatalf("metrics missing archive errors counter:\n%s", metrics.String())
	}
}

// TestCollectorReportStatus pins the report error taxonomy: 404 for a run
// never announced, 409 while shards are outstanding, 200 once complete —
// matching bbacoord's /report so pollers need one state machine.
func TestCollectorReportStatus(t *testing.T) {
	idJSON, shards, _ := runLocalCampaign(t, testCampaignConfig())
	c := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(srv.URL + "/report/r")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(seq uint64, kind PayloadKind, payload []byte) {
		t.Helper()
		f := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: seq, Kind: kind, Payload: payload})
		resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(f))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("ingest seq %d: %d", seq, resp.StatusCode)
		}
	}

	if code := get(); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", code)
	}
	post(0, PayloadRunStart, idJSON)
	if code := get(); code != http.StatusConflict {
		t.Fatalf("no shards yet: %d, want 409", code)
	}
	post(1, PayloadShard, shards[0])
	post(2, PayloadShard, shards[1])
	if code := get(); code != http.StatusConflict {
		t.Fatalf("2 of 3 shards: %d, want 409", code)
	}
	if _, err := c.Report("r"); !errors.Is(err, ErrRunIncomplete) {
		t.Fatalf("incomplete Report error = %v, want ErrRunIncomplete", err)
	}
	post(3, PayloadShard, shards[2])
	if code := get(); code != http.StatusOK {
		t.Fatalf("complete run: %d, want 200", code)
	}
}
