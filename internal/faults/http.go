package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// HTTPInjector drives a dash server's fault-injecting mode: the server
// asks it, once per chunk request, which fault (if any) to apply. The
// schedule clock starts at the first request (or an explicit Start), and
// which requests inside an episode fail is hashed from (seed, request
// sequence) — the mirror image of Transport, applied at the origin
// instead of the edge.
type HTTPInjector struct {
	// Schedule holds the episodes to apply; nil or empty disables injection.
	Schedule *Schedule
	// Seed drives per-request fault decisions.
	Seed int64
	// StallSleep is how long a stalled response hangs mid-body before the
	// handler gives up (default 30 s — longer than any sane client timeout).
	StallSleep time.Duration
	// OnFault, when set, observes each injected fault with the request
	// sequence number.
	OnFault func(kind Kind, seq int64)
	// Now replaces time.Now (tests).
	Now func() time.Time

	seq     atomic.Int64
	startMu sync.Mutex
	start   time.Time
}

// Start pins the schedule clock's zero. Unset, it is the first request.
func (in *HTTPInjector) Start(at time.Time) {
	in.startMu.Lock()
	in.start = at
	in.startMu.Unlock()
}

// Request registers the next chunk request and returns its fault decision:
// the extra first-byte latency an active latency spike imposes, and — when
// fault is true — the HTTP-path fault kind the handler must act out
// (ServerError → 503, StallBody → partial body then hang, ConnReset →
// partial body then abort).
func (in *HTTPInjector) Request() (latency time.Duration, kind Kind, fault bool) {
	if in == nil || in.Schedule.Empty() {
		return 0, 0, false
	}
	now := time.Now
	if in.Now != nil {
		now = in.Now
	}
	at := func() time.Duration {
		n := now()
		in.startMu.Lock()
		defer in.startMu.Unlock()
		if in.start.IsZero() {
			in.start = n
		}
		return n.Sub(in.start)
	}()
	seq := in.seq.Add(1) - 1

	if f, ok := in.Schedule.Active(LatencySpike, at); ok {
		latency = f.Latency
		in.emit(LatencySpike, seq)
	}
	f, ok := in.Schedule.ActiveHTTP(at)
	if !ok || unitFloat(hash(mix64(uint64(in.Seed)), uint64(f.Kind), uint64(seq))) >= AttemptFailProb {
		return latency, 0, false
	}
	in.emit(f.Kind, seq)
	return latency, f.Kind, true
}

// Stall returns how long a stalled response should hang.
func (in *HTTPInjector) Stall() time.Duration {
	if in.StallSleep > 0 {
		return in.StallSleep
	}
	return 30 * time.Second
}

func (in *HTTPInjector) emit(kind Kind, seq int64) {
	if in.OnFault != nil {
		in.OnFault(kind, seq)
	}
}
