package abr

import (
	"math"
	"time"
)

// BOLA is the buffer-level Lyapunov controller of Spiteri, Urgaonkar and
// Sitaraman, "BOLA: Near-Optimal Bitrate Adaptation for Online Videos"
// (arXiv:1601.06748) — the strongest published pure buffer-based rival to
// the BBA family, and like BBA it ignores capacity estimates entirely in
// steady state.
//
// Each decision maximizes the Lyapunov drift-plus-penalty score over the
// session ladder:
//
//	score_m(Q) = (V·(v_m + γ) − Q) / S_m
//
// where Q is the buffer occupancy in seconds, S_m the nominal chunk size of
// rung m, v_m = ln(S_m/S_0) the logarithmic utility (v_0 = 0), V the
// control gain trading utility against buffer deviation and γ the
// rebuffer-avoidance weight (the paper's γp product, folded into one
// parameter). The pairwise boundary where rung m+1 overtakes rung m is
//
//	Q_{m,m+1} = V·(α_m + γ),   α_m = (S_{m+1}·v_m − S_m·v_{m+1}) / (S_{m+1} − S_m)
//
// so for log utilities the thresholds ascend with m and the selected rung
// is a monotone step function of the buffer — BOLA is a chunk map in the
// paper's Section 5 sense, derived from utility maximization instead of
// drawn geometrically.
//
// V and γ come from the paper's design procedure: pick the buffer levels
// the two extreme boundaries should sit at and solve the two linear
// equations. Q_{0,1} = QLow places the last all-R_min level (BBA's
// reservoir analogue); Q_{top−1,top} = QHigh places the level where R_max
// becomes optimal (the ramp end):
//
//	V = (QHigh − QLow) / (α_top − α_0),   γ = QLow/V − α_0
//
// The derivation is recomputed once per session from the (possibly
// R_min-promoted) ladder's nominal chunk sizes and the session's BufferMax.
type BOLA struct {
	// QLow is the buffer level of the R_min↔next boundary: below it BOLA
	// always requests R_min (default 10 s).
	QLow time.Duration
	// QHigh is the buffer level at which R_max becomes optimal. Zero
	// derives it as QHighFraction of the session's BufferMax.
	QHigh time.Duration
	// QHighFraction positions QHigh when QHigh is zero (default 0.9, the
	// same fraction at which BBA-0's rate map reaches R_max).
	QHighFraction float64

	v, gamma float64
	scores   []float64 // scratch: V·(v_m + γ) per rung
	sizes    []float64
	derived  bool
}

// NewBOLA returns the controller with the published design defaults.
func NewBOLA() *BOLA {
	return &BOLA{QLow: 10 * time.Second, QHighFraction: 0.9}
}

// Name implements Algorithm.
func (b *BOLA) Name() string { return "BOLA" }

// derive solves the V/γ system for the session ladder.
func (b *BOLA) derive(st State, s Stream) {
	l := s.Ladder()
	m := len(l)
	b.sizes = make([]float64, m)
	utils := make([]float64, m)
	for i := 0; i < m; i++ {
		b.sizes[i] = float64(s.NominalChunkSize(i))
		utils[i] = math.Log(b.sizes[i] / b.sizes[0])
	}
	qLow := b.QLow.Seconds()
	qHigh := b.QHigh.Seconds()
	if b.QHigh == 0 {
		qHigh = b.QHighFraction * st.BufferMax.Seconds()
	}
	if qHigh <= qLow {
		qHigh = qLow + 1
	}
	alpha := func(i int) float64 {
		return (b.sizes[i+1]*utils[i] - b.sizes[i]*utils[i+1]) / (b.sizes[i+1] - b.sizes[i])
	}
	b.v = qHigh - qLow
	var a0 float64
	if m >= 2 {
		a0 = alpha(0)
		if aTop := alpha(m - 2); aTop > a0 {
			b.v = (qHigh - qLow) / (aTop - a0)
		}
	}
	b.gamma = qLow/b.v - a0
	b.scores = make([]float64, m)
	for i := 0; i < m; i++ {
		b.scores[i] = b.v * (utils[i] + b.gamma)
	}
	b.derived = true
}

// Next implements Algorithm: argmax of the drift-plus-penalty score. Ties
// resolve to the lower rate, the stable choice.
func (b *BOLA) Next(st State, s Stream) int {
	if !b.derived {
		b.derive(st, s)
	}
	q := st.Buffer.Seconds()
	best, bestScore := 0, math.Inf(-1)
	for i := range b.scores {
		if score := (b.scores[i] - q) / b.sizes[i]; score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Thresholds returns the derived buffer boundaries Q_{m,m+1} between
// adjacent rungs, in seconds — the closed form the expectation tests pin.
// It derives on first use from the given state and stream.
func (b *BOLA) Thresholds(st State, s Stream) []float64 {
	if !b.derived {
		b.derive(st, s)
	}
	m := len(b.sizes)
	if m < 2 {
		return nil
	}
	out := make([]float64, m-1)
	for i := 0; i < m-1; i++ {
		// score_i(Q) = score_{i+1}(Q) solved for Q.
		out[i] = (b.sizes[i+1]*b.scores[i] - b.sizes[i]*b.scores[i+1]) / (b.sizes[i+1] - b.sizes[i])
	}
	return out
}
