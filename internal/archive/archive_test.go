package archive

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bba/internal/telemetry"
	"bba/internal/units"
)

// testEvent fabricates a deterministic event: session i%sessions within
// one of two groups, kinds cycling through the rollup-relevant taxonomy.
func testEvent(i int) telemetry.Event {
	kinds := []telemetry.Kind{
		telemetry.SessionStart, telemetry.ChunkComplete, telemetry.ChunkComplete,
		telemetry.RateSwitch, telemetry.RebufferStart, telemetry.RebufferEnd,
		telemetry.BufferSample, telemetry.SessionEnd,
	}
	group := "BBA-0"
	if i%2 == 1 {
		group = "BBA-1"
	}
	return telemetry.Event{
		Kind:          kinds[i%len(kinds)],
		Session:       fmt.Sprintf("d0.w0.s%d.%s", i%7, group),
		At:            time.Duration(i) * time.Millisecond,
		Chunk:         i % 100,
		RateIndex:     i % 5,
		PrevRateIndex: (i + 1) % 5,
		Rate:          units.BitRate(1000*1000 + i),
		Bytes:         int64(1500 * i),
		Duration:      time.Duration(i%50) * time.Millisecond,
		Throughput:    units.BitRate(3 * 1000 * 1000),
		Buffer:        time.Duration(i%240) * time.Second,
		Played:        time.Duration(i) * time.Second,
		Reservoir:     90 * time.Second,
		Protection:    -time.Second,
		Label:         "BBA-0",
	}
}

// batchOf renders events [from, to) as one journal batch.
func batchOf(from, to int) []byte {
	var b []byte
	for i := from; i < to; i++ {
		b = telemetry.AppendJSONL(b, testEvent(i))
	}
	return b
}

// TestArchiveExportLossless pins the acceptance criterion: re-exporting an
// archive reproduces the admitted journal byte for byte, across multiple
// compactions, a live WAL tail, and non-canonical lines that can only
// survive via the raw page.
func TestArchiveExportLossless(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, CompactEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	appendBatch := func(b []byte) {
		t.Helper()
		if err := s.Append("run1", b); err != nil {
			t.Fatal(err)
		}
		want.Write(b)
	}
	for i := 0; i < 300; i += 10 {
		appendBatch(batchOf(i, i+10))
	}
	// Non-canonical lines: reordered fields, floats, unknown kinds, plain
	// garbage. Each must come back exactly as written.
	for _, raw := range []string{
		`{"session":"s","kind":"buffer_sample"}`,
		`{"kind":"chunk_complete","session":"d0.w0.s1.BBA-1","at_ns":1.5,"bytes":2000}`,
		`{"kind":"martian_event","session":"x"}`,
		`not json at all`,
	} {
		appendBatch([]byte(raw + "\n"))
	}
	appendBatch(batchOf(300, 305)) // canonical tail after the raws

	check := func(label string, st *Store) {
		t.Helper()
		var got bytes.Buffer
		if err := st.Export("run1", &got); err != nil {
			t.Fatalf("%s: Export: %v", label, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: export is not byte-identical to the admitted journal (got %d bytes, want %d)",
				label, got.Len(), want.Len())
		}
	}
	check("live", s)

	if err := s.CompactAll(); err != nil {
		t.Fatal(err)
	}
	check("compacted", s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	check("reopened read-only", ro)
	if err := ro.Append("run1", []byte("{}\n")); err != ErrReadOnly {
		t.Fatalf("read-only Append error = %v, want ErrReadOnly", err)
	}
}

// TestArchiveAppendValidation pins the Append contract edges.
func TestArchiveAppendValidation(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append("r", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := s.Append("r", []byte("no newline")); err == nil {
		t.Fatal("unterminated batch accepted")
	}
	// A batch beyond the WAL record bound must be refused, not persisted:
	// scanWAL would discard the oversized record as a corrupt tail on the
	// next open, silently losing an acknowledged batch.
	big := make([]byte, maxWALRecord+1)
	big[len(big)-1] = '\n'
	if err := s.Append("r", big); err == nil {
		t.Fatal("batch beyond the WAL record limit accepted")
	}
}

// TestAppendPersistsBeforeReturn pins the ACK-gating contract at the
// file level: the batch must be on the WAL file — not parked in a
// userspace buffer — the moment Append returns nil, because that return
// is what lets the collector ACK the frame and the shipper drop its only
// other copy. The store is deliberately neither compacted nor closed:
// reading the file here is exactly what a crash right now would leave.
func TestAppendPersistsBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, CompactEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := batchOf(0, 10)
	if err := s.Append("run1", batch); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "run1", walName))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if n := scanWAL(data, func(p []byte) { got = append(got, p...) }); n != int64(len(data)) {
		t.Fatalf("WAL has %d unframed tail bytes after a clean Append", int64(len(data))-n)
	}
	if !bytes.Equal(got, batch) {
		t.Fatalf("WAL on disk holds %d payload bytes, want the acknowledged %d-byte batch", len(got), len(batch))
	}
}

// TestArchiveCrashRecovery corrupts the WAL tail mid-record and checks
// that reopening keeps the valid prefix, drops the torn suffix, and keeps
// accepting appends.
func TestArchiveCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, CompactEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	good := batchOf(0, 20)
	if err := s.Append("run1", good); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("run1", batchOf(20, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second record: truncate the WAL ten bytes short.
	walPath := filepath.Join(dir, "run1", walName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	s, err = Open(Config{Dir: dir, CompactEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tail := batchOf(40, 50)
	if err := s.Append("run1", tail); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := s.Export("run1", &got); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), good...), tail...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("recovered export = %d bytes, want %d (first batch + post-recovery batch)",
			got.Len(), len(want))
	}
}

// referenceFilter is the trivially-correct row-wise implementation Scan
// and Aggregate are checked against.
func referenceFilter(events []telemetry.Event, q Query) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range events {
		e := e
		if q.matchesEvent(&e) {
			out = append(out, e)
		}
	}
	return out
}

// populate builds a store with n events split across blocks and a WAL
// tail, returning the events in admission order.
func populate(t *testing.T, n int) (*Store, []telemetry.Event) {
	t.Helper()
	s, err := Open(Config{Dir: t.TempDir(), CompactEvents: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	events := make([]telemetry.Event, n)
	for i := range events {
		events[i] = testEvent(i)
	}
	for i := 0; i < n; i += 16 {
		end := i + 16
		if end > n {
			end = n
		}
		if err := s.Append("run1", batchOf(i, end)); err != nil {
			t.Fatal(err)
		}
	}
	return s, events
}

func TestArchiveScan(t *testing.T) {
	s, events := populate(t, 500)
	queries := []Query{
		{Run: "run1"},
		{Run: "run1", Kinds: []telemetry.Kind{telemetry.ChunkComplete}},
		{Run: "run1", Kinds: []telemetry.Kind{telemetry.RebufferStart, telemetry.SessionEnd}},
		{Run: "run1", Group: "BBA-1"},
		{Run: "run1", Session: "d0.w0.s3.BBA-1"},
		{Run: "run1", From: 100 * time.Millisecond, To: 200 * time.Millisecond},
		{Run: "run1", Kinds: []telemetry.Kind{telemetry.ChunkComplete}, Group: "BBA-0", From: 50 * time.Millisecond},
		{Run: "run1", To: time.Nanosecond}, // prunes every block but row 0's
	}
	for qi, q := range queries {
		want := referenceFilter(events, q)
		var got []telemetry.Event
		if err := s.Scan(q, func(e telemetry.Event) bool {
			got = append(got, e)
			return true
		}); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d events, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d row %d:\n got %+v\nwant %+v", qi, i, got[i], want[i])
			}
		}
	}

	// Early stop: fn returning false ends the scan.
	n := 0
	if err := s.Scan(Query{Run: "run1"}, func(telemetry.Event) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("early-stopped scan visited %d events, want 10", n)
	}

	if err := s.Scan(Query{Run: "nope"}, func(telemetry.Event) bool { return true }); err == nil {
		t.Fatal("scan of unknown run succeeded")
	}
}

// referenceRollup folds events row-wise with aggState's own addEvent —
// so the column-wise block path in Aggregate is what the test exercises.
func referenceRollup(events []telemetry.Event, q Query) []GroupRollup {
	st := newAggState()
	for i := range events {
		if q.matchesEvent(&events[i]) {
			st.addEvent(&events[i])
		}
	}
	var out []GroupRollup
	for _, gr := range st.groups {
		out = append(out, *gr)
	}
	return out
}

func TestArchiveAggregate(t *testing.T) {
	s, events := populate(t, 500)
	queries := []Query{
		{Run: "run1"},
		{Run: "run1", Group: "BBA-0"},
		{Run: "run1", Kinds: []telemetry.Kind{telemetry.ChunkComplete, telemetry.RebufferEnd}},
		{Run: "run1", From: 37 * time.Millisecond, To: 401 * time.Millisecond},
	}
	for qi, q := range queries {
		got, err := s.Aggregate(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := referenceRollup(events, q)
		byGroup := map[string]GroupRollup{}
		for _, gr := range want {
			byGroup[gr.Group] = gr
		}
		if len(got.Groups) != len(byGroup) {
			t.Fatalf("query %d: %d groups, want %d", qi, len(got.Groups), len(byGroup))
		}
		for _, gr := range got.Groups {
			if gr != byGroup[gr.Group] {
				t.Fatalf("query %d group %s:\n got %+v\nwant %+v", qi, gr.Group, gr, byGroup[gr.Group])
			}
		}
	}
}

// TestBlockDetectsCorruption flips bytes in a sealed block and checks the
// CRCs catch it instead of returning silently wrong data.
func TestBlockDetectsCorruption(t *testing.T) {
	blk, err := encodeBlock("r", splitLines(batchOf(0, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlock(blk); err != nil {
		t.Fatalf("pristine block rejected: %v", err)
	}
	// Corrupt a page byte (past header, before footer).
	for _, at := range []int{8, len(blk) / 2} {
		bad := append([]byte(nil), blk...)
		bad[at] ^= 0xFF
		b, err := DecodeBlock(bad)
		if err != nil {
			continue // footer-level detection
		}
		var export bytes.Buffer
		if err := b.Export(&export); err == nil {
			t.Fatalf("corruption at byte %d went undetected", at)
		}
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(blk); cut += 97 {
		if _, err := DecodeBlock(blk[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// craftBlock wraps an arbitrary footer in a valid envelope (magics,
// version, footer CRC) — the shape an adversary who can write block
// files controls completely.
func craftBlock(t testing.TB, ft footer) []byte {
	t.Helper()
	ftJSON, err := json.Marshal(ft)
	if err != nil {
		t.Fatal(err)
	}
	blk := append([]byte(nil), blockMagic...)
	blk = append(blk, blockVersion)
	blk = append(blk, ftJSON...)
	blk = binary.LittleEndian.AppendUint32(blk, crc32.Checksum(ftJSON, blockCRCTable))
	blk = binary.LittleEndian.AppendUint32(blk, uint32(len(ftJSON)))
	return append(blk, blockEndMagic...)
}

// TestBlockRejectsCraftedFooter pins the never-panic property against
// footers that pass the CRC but carry hostile page geometry — offsets
// near MaxInt64 that overflow additive bounds checks, pages overlapping
// the header, and lengths past the file.
func TestBlockRejectsCraftedFooter(t *testing.T) {
	pages := map[string]pageInfo{
		"offset overflows int64": {Name: "kind", Off: math.MaxInt64 - 2, Len: 8},
		"length overflows int64": {Name: "kind", Off: 5, Len: math.MaxInt64 - 2},
		"page overlaps header":   {Name: "kind", Off: 0, Len: 4},
		"page past end of file":  {Name: "kind", Off: 5, Len: 1 << 30},
		"negative offset":        {Name: "kind", Off: -1, Len: 4},
	}
	for name, pg := range pages {
		blk := craftBlock(t, footer{Version: blockVersion, Rows: 1, Pages: []pageInfo{pg}})
		b, err := DecodeBlock(blk)
		if err == nil {
			// Even if decode were lenient, touching the page must not panic.
			if _, perr := b.page(pg.Name); perr == nil {
				t.Fatalf("%s: crafted page accepted outright", name)
			}
			t.Fatalf("%s: crafted footer accepted by DecodeBlock", name)
		}
	}
}

func splitLines(batch []byte) [][]byte {
	var lines [][]byte
	for len(batch) > 0 {
		nl := bytes.IndexByte(batch, '\n')
		lines = append(lines, batch[:nl+1])
		batch = batch[nl+1:]
	}
	return lines
}

// TestReadOnlySeesLiveWriter checks a read-only store on a directory a
// writer is still mutating rebuilds its view per read — WAL re-scanned,
// blocks and runs re-listed — rather than trusting stale state from
// Open: everything the writer persisted before the query must appear,
// including blocks it sealed and runs it created after the open.
func TestReadOnlySeesLiveWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, CompactEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append("run1", batchOf(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact("run1"); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	// After the read-only open: a second sealed block, a live WAL tail,
	// and a whole new run. All of it must be visible, none duplicated.
	if err := w.Append("run1", batchOf(5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact("run1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("run1", batchOf(10, 12)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("run2", batchOf(0, 3)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := ro.Export("run1", &got); err != nil {
		t.Fatal(err)
	}
	if want := batchOf(0, 12); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("read-only export = %d bytes, want all %d admitted bytes (including the block sealed after Open)",
			got.Len(), len(want))
	}
	got.Reset()
	if err := ro.Export("run2", &got); err != nil {
		t.Fatalf("run created after the read-only open: %v", err)
	}
	if want := batchOf(0, 3); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("read-only export of new run = %d bytes, want %d", got.Len(), len(want))
	}
	if runs := ro.Runs(); len(runs) != 2 {
		t.Fatalf("read-only Runs() = %v, want both runs", runs)
	}
}

func FuzzBlockDecode(f *testing.F) {
	blk, err := encodeBlock("r", splitLines(batchOf(0, 20)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blk)
	f.Add([]byte("BBAC"))
	f.Add([]byte{})
	// A CRC-valid footer with hostile page geometry: the fuzzer cannot
	// invent matching checksums, so seed it past the envelope checks.
	f.Add(craftBlock(f, footer{Version: blockVersion, Rows: 1,
		Pages: []pageInfo{{Name: "kind", Off: math.MaxInt64 - 2, Len: 8}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeBlock and every accessor must never panic, whatever the
		// input; corruption surfaces as errors.
		b, err := DecodeBlock(data)
		if err != nil {
			return
		}
		b.Dict("kind")
		b.Dict("session")
		b.Dict("label")
		b.Ints("at_ns", nil)
		b.Raws()
		b.Export(&bytes.Buffer{})
	})
}
