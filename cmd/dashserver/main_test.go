package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestBuildServer(t *testing.T) {
	srv, video, err := buildServer(30, 4000, 1, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if video.NumChunks() != 30 {
		t.Errorf("chunks = %d", video.NumChunks())
	}
	if srv.Latency != 5*time.Millisecond {
		t.Errorf("latency = %v", srv.Latency)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("manifest status %s", resp.Status)
	}
	// Zero chunks falls back to the VBR default title length.
	_, v2, err := buildServer(0, 4000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumChunks() != 1800 {
		t.Errorf("defaulted chunks = %d, want 1800", v2.NumChunks())
	}
}
