package soak

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Metrics accumulates the soak daemon's SLO counters and serves them as
// Prometheus text (hand-written, like telemetry.Prom — the repository
// carries no client library). One Metrics instance is shared by the
// Runner (writer) and the daemon's HTTP endpoints (readers).
type Metrics struct {
	mu sync.Mutex

	start          time.Time
	cycles         int64
	cycleFailures  int64
	consecFailures int64
	sessions       int64
	sessionErrors  int64
	rebuffers      int64
	stallSeconds   float64
	chunks         int64
	checks         map[string]int64
	failures       map[string]int64

	lastViolations int64
	lastSeconds    float64
	lastCycle      int64
}

// NewMetrics returns an empty Metrics.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		checks:   make(map[string]int64),
		failures: make(map[string]int64),
	}
}

// ObserveCycle folds one finished cycle into the counters.
func (m *Metrics) ObserveCycle(c *Cycle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cycles++
	m.lastCycle = int64(c.Index)
	m.lastViolations = int64(len(c.Violations))
	m.lastSeconds = c.Duration.Seconds()
	if c.Pass() {
		m.consecFailures = 0
	} else {
		m.cycleFailures++
		m.consecFailures++
	}
	for name, n := range c.Checks {
		m.checks[name] += int64(n)
	}
	for _, v := range c.Violations {
		m.failures[v.Invariant]++
	}
	for i := range c.Sessions {
		s := &c.Sessions[i]
		m.sessions++
		if s.Err != nil {
			m.sessionErrors++
		}
		if s.Result != nil {
			m.rebuffers += int64(s.Result.Rebuffers)
			m.stallSeconds += s.Result.StallTime.Seconds()
			m.chunks += int64(len(s.Result.Chunks))
		}
	}
}

// Healthy reports whether the most recent cycle passed (vacuously true
// before the first cycle completes).
func (m *Metrics) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.consecFailures == 0
}

// ServeHTTP implements the /metrics endpoint.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	labelled := func(name, help string, vals map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{invariant=%q} %d\n", name, k, vals[k])
		}
	}

	counter("soak_cycles_total", "Completed soak cycles.", m.cycles)
	counter("soak_cycle_failures_total", "Cycles with at least one invariant violation.", m.cycleFailures)
	counter("soak_sessions_total", "Client sessions driven.", m.sessions)
	counter("soak_session_errors_total", "Sessions ending in a hard error.", m.sessionErrors)
	counter("soak_rebuffers_total", "Rebuffer events across all sessions.", m.rebuffers)
	counter("soak_chunks_total", "Chunks downloaded across all sessions.", m.chunks)
	fmt.Fprintf(w, "# HELP soak_stall_seconds_total Total stall time across all sessions.\n# TYPE soak_stall_seconds_total counter\nsoak_stall_seconds_total %g\n", m.stallSeconds)
	labelled("soak_invariant_checks_total", "Invariant evaluations by name.", m.checks)
	labelled("soak_invariant_failures_total", "Invariant violations by name.", m.failures)
	gauge("soak_consecutive_cycle_failures", "Failing cycles in a row (0 = healthy).", float64(m.consecFailures))
	gauge("soak_last_cycle_violations", "Violations in the most recent cycle.", float64(m.lastViolations))
	gauge("soak_last_cycle_duration_seconds", "Wall-clock duration of the most recent cycle.", m.lastSeconds)
	gauge("soak_last_cycle_index", "Index of the most recent cycle.", float64(m.lastCycle))
	gauge("soak_up_seconds", "Daemon uptime.", time.Since(m.start).Seconds())
}

// Healthz returns the /healthz handler: 200 with a JSON body while the
// latest cycle passed, 503 while cycles are failing.
func (m *Metrics) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		m.mu.Lock()
		status := "ok"
		code := http.StatusOK
		if m.consecFailures > 0 {
			status = "failing"
			code = http.StatusServiceUnavailable
		}
		body := map[string]any{
			"status":               status,
			"cycles":               m.cycles,
			"cycle_failures":       m.cycleFailures,
			"consecutive_failures": m.consecFailures,
		}
		m.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	})
}
