// Package campaign scales the A/B harness from figure-sized experiments to
// million-session campaigns: constant memory, deterministic sharding, and
// kill-resume checkpointing.
//
// The unit of work is the shard — a fixed run of ShardSize consecutive
// global paired-session indices. Everything about a session is keyed by
// (Seed, shard, offset), and shard boundaries depend only on the campaign
// identity, never on worker count or process count. The determinism rule is
// therefore:
//
//	per-shard accumulators are bit-identical however they are computed, and
//	the campaign state is always the left-to-right fold of those shard
//	accumulators in shard-index order.
//
// Quantile sketches are exactly mergeable (set union of hashed samples), so
// they are order-independent outright; Welford moment merges are
// deterministic but not exactly associative in floating point, which is why
// the fold order is pinned. Under this rule a 4-worker run, a 4-process
// striped run, and a single-threaded run produce byte-identical reports.
//
// Memory: each session folds immediately into its shard's per-group
// accumulators (a few KB each); a single-process run folds shards into a
// running prefix as they complete, holding at most the merge window
// (2×Parallelism) of out-of-order shards. Checkpoints record completed
// shards only — a shard is the atomic unit, so resuming after a kill never
// double-counts a session.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bba/internal/abtest"
	"bba/internal/batch"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/telemetry"
)

// Config describes one campaign. The zero value plus a Sessions count is a
// runnable clean campaign over the standard groups.
type Config struct {
	// Name labels progress and telemetry (default "campaign").
	Name string
	// Seed makes the campaign deterministic.
	Seed int64
	// Sessions is the number of paired session draws; each is streamed once
	// per group, so the player-session count is Sessions × len(Groups).
	Sessions int
	// ShardSize is the number of paired sessions per shard (default 1024).
	// It is part of the campaign identity: changing it changes per-session
	// RNG keying and therefore the drawn population.
	ShardSize int
	// Days is the simulated calendar depth; session g lands in window
	// g mod 12 of day (g div 12) mod Days (default 3).
	Days int
	// Groups are the experiment arms; empty means abtest.StandardGroups.
	Groups []abtest.Group
	// Population tunes the synthetic user population.
	Population abtest.PopulationConfig
	// CatalogSize is the number of titles (default 24).
	CatalogSize int
	// Ladder is the encoding ladder (default media.DefaultLadder).
	Ladder media.Ladder
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
	// Batch routes session execution through the internal/batch kernel:
	// each worker owns a batch.Runner that advances many paired draws
	// concurrently through reusable lanes with shared per-title reservoir
	// plans and no per-chunk logging. Draw keying, fold order and
	// accumulator arithmetic are unchanged, so reports are byte-identical
	// to scalar execution. Batch is not part of the campaign identity.
	Batch bool
	// BatchWidth is the kernel's paired-draws-in-flight per worker
	// (default batch.DefaultWidth). Display/throughput only — never part
	// of the identity.
	BatchWidth int
	// Faults, when non-nil, runs every session under per-session fault
	// weather exactly as the A/B harness does.
	Faults *faults.ScheduleConfig
	// FaultSeed seeds the fault schedules independently of Seed.
	FaultSeed int64
	// SketchSize is each metric sketch's retained-sample capacity
	// (default 512). Part of the campaign identity.
	SketchSize int
	// Stripe/Stripes split the campaign across processes: this process runs
	// only shards s with s mod Stripes == Stripe. Defaults to the whole
	// campaign (Stripes 1, Stripe 0). A striped run's checkpoint is merged
	// with the other stripes' via MergeCheckpoints.
	Stripe, Stripes int
	// Resume, when non-nil, is a previously saved checkpoint: its recorded
	// shards are skipped (never re-run, never double-counted) and the run
	// continues from its state. Its identity must match the config's.
	Resume *Checkpoint
	// CheckpointPath, when non-empty, receives an atomically written
	// checkpoint every CheckpointEvery completed shards and at the end of
	// the run (including cancelled runs).
	CheckpointPath string
	// CheckpointEvery is the shard interval between checkpoint writes
	// (default 8).
	CheckpointEvery int
	// NewExtra, when non-nil, attaches an extension accumulator to the run:
	// every shard gets a fresh Extra, each of the shard's paired draws is
	// fed to it via AddSessionSet (after the per-group accumulators), and
	// the collector folds completed shards' extras in ascending shard-index
	// order into Outcome.Extra — the same fold discipline that makes the
	// report byte-identical at any worker count. The arena's pairwise
	// match accumulators hook here. Extras are not checkpointed, so
	// NewExtra requires a single-stripe, non-resumed run.
	NewExtra func() Extra
	// OnShard, when non-nil, is called from the collector goroutine with
	// each completed shard's accumulators before they fold into the run
	// state; returning an error cancels the run. The collect shipper hooks
	// here to ship shard aggregates to a remote collector. Callers must not
	// retain or mutate accums — the run state takes ownership afterwards.
	OnShard func(shard int, accums []*GroupAccum) error
	// Progress, when non-nil, is called after every completed shard from
	// the collector goroutine. It must not block.
	Progress func(Progress)
	// Observer, when non-nil, receives one CampaignProgress telemetry event
	// per completed shard.
	Observer telemetry.Observer
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "campaign"
	}
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 1024
	}
	if c.Days <= 0 {
		c.Days = 3
	}
	if len(c.Groups) == 0 {
		c.Groups = abtest.StandardGroups()
	}
	if c.CatalogSize <= 0 {
		c.CatalogSize = 24
	}
	if c.Ladder == nil {
		c.Ladder = media.DefaultLadder()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.SketchSize <= 0 {
		c.SketchSize = 512
	}
	if c.Stripes <= 0 {
		c.Stripes = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
}

// Identity returns the campaign identity the config pins, with defaults
// applied — what a remote collector aggregates under.
func (c *Config) Identity() Identity {
	d := *c
	d.applyDefaults()
	return d.identity()
}

// identity derives the campaign identity from a defaulted config.
func (c *Config) identity() Identity {
	names := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		names[i] = g.Name
	}
	return Identity{
		Seed:        c.Seed,
		FaultSeed:   c.FaultSeed,
		Faults:      c.Faults != nil,
		Sessions:    c.Sessions,
		ShardSize:   c.ShardSize,
		Days:        c.Days,
		CatalogSize: c.CatalogSize,
		SketchSize:  c.SketchSize,
		Groups:      names,
	}
}

// Progress is a live snapshot handed to Config.Progress after each
// completed shard.
type Progress struct {
	// ShardsDone / ShardsTotal count this run's target shard set (the
	// stripe's shards), including shards resumed from a checkpoint.
	ShardsDone, ShardsTotal int
	// SessionsDone / SessionsTotal count paired sessions over the same set.
	SessionsDone, SessionsTotal int64
	// Elapsed is wall-clock time since the run started.
	Elapsed time.Duration
	// SessionsPerSec is this run's player-session throughput (excludes
	// resumed shards).
	SessionsPerSec float64
	// ETA estimates the remaining wall-clock time from this run's pace;
	// zero until the first shard completes.
	ETA time.Duration
	// Groups are display-only live aggregates folded in completion order
	// (not the deterministic fold; see GroupDelta).
	Groups []GroupDelta
}

// GroupDelta is a live, display-only view of one arm: folded in shard
// completion order, so it is not deterministic across runs — the final
// report is. VsControl is the group's mean rebuffer rate relative to the
// first group's (1 = equal, 0 when the control has no samples yet).
type GroupDelta struct {
	Name         string
	Sessions     int64
	RebufferRate float64
	AvgRateKbps  float64
	VsControl    float64
}

// RunStats describes one Run invocation's execution.
type RunStats struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// SessionsRun counts paired sessions executed by this run (resumed
	// shards excluded); PlayerSessions = SessionsRun × groups.
	SessionsRun    int64
	PlayerSessions int64
	// ShardsRun counts shards executed by this run.
	ShardsRun int
	// Parallelism is the worker count used.
	Parallelism int
	// Engine names the execution path sessions ran through: "scalar" or
	// "batch". Display only — the engine is never part of the campaign
	// identity.
	Engine string
	// PeakPending is the maximum number of completed shard accumulator
	// sets held beyond the folded prefix at any point — the memory-ceiling
	// witness. Single-process runs keep it within the merge window
	// (2×Parallelism); striped runs hold their whole stripe by design.
	PeakPending int
	// Faults, Retries, Degradations and Failovers total fault-injection
	// activity across this run's sessions.
	Faults, Retries, Degradations, Failovers int64
}

// SessionsPerSecond returns this run's player-session throughput.
func (s RunStats) SessionsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.PlayerSessions) / s.Elapsed.Seconds()
}

// Outcome is the result of a Run.
type Outcome struct {
	// Report is the final campaign report; nil when the run did not
	// complete the whole campaign (a stripe subset, or a cancelled run).
	Report *Report
	// Checkpoint is the run's final state — always present, resumable and
	// mergeable even when the run was cancelled.
	Checkpoint *Checkpoint
	// Extra is the extension accumulator folded over every completed shard
	// in shard-index order; nil unless Config.NewExtra was set. On a
	// cancelled run it covers only the folded prefix.
	Extra Extra
	// Stats describes the run's execution.
	Stats RunStats
}

// shardRNG derives the per-session RNG from (seed, shard, offset) — the
// campaign's determinism key. The extra constant decorrelates campaign
// draws from abtest.SessionRNG streams with the same seed.
func shardRNG(seed int64, shard, off int) *rand.Rand {
	return rand.New(rand.NewSource(int64(shardMix(uint64(seed), uint64(shard), uint64(off), 0xCA3A16))))
}

// shardFaultSeed derives the per-session fault seed from (faultSeed, shard,
// offset), decorrelated from the population stream.
func shardFaultSeed(faultSeed int64, shard, off int) int64 {
	return int64(shardMix(uint64(faultSeed), uint64(shard), uint64(off), 0xCA3A16FA5E1))
}

// sessionKey is the unique sketch-sample identity of (global session,
// group): global index in the high bits, group index in the low bits.
func sessionKey(global int64, gi int) uint64 {
	return uint64(global)<<8 | uint64(gi&0xFF)
}

func shardMix(vs ...uint64) uint64 {
	x := vs[0]
	for _, v := range vs[1:] {
		x += (v + 1) * 0x9E3779B97F4A7C15
		x = splitmix(x)
	}
	return x
}

func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shardDraw draws the user for one (shard, offset) — the campaign's
// determinism key, identical for scalar and batch execution.
func shardDraw(cfg *Config, catalog *media.Catalog, shard, off int) (abtest.User, *media.Video, int64) {
	global := int64(shard)*int64(cfg.ShardSize) + int64(off)
	window := int(global % int64(metrics.WindowsPerDay))
	day := int(global / int64(metrics.WindowsPerDay) % int64(cfg.Days))
	rng := shardRNG(cfg.Seed, shard, off)
	u := abtest.DrawUser(cfg.Population, window, day, rng)
	var fseed int64
	if cfg.Faults != nil {
		fseed = shardFaultSeed(cfg.FaultSeed, shard, off)
	}
	return u, u.Pick(catalog), fseed
}

// shardFold folds one paired draw's metrics into the shard's accumulators,
// in group order — the arithmetic both execution paths share.
func shardFold(cfg *Config, accums []*GroupAccum, extra Extra, shard, off int, ms []metrics.Session) error {
	global := int64(shard)*int64(cfg.ShardSize) + int64(off)
	for gi := range cfg.Groups {
		if err := accums[gi].AddSession(sessionKey(global, gi), ms[gi]); err != nil {
			return fmt.Errorf("campaign: shard %d session %d: %w", shard, off, err)
		}
	}
	if extra != nil {
		if err := extra.AddSessionSet(global, ms); err != nil {
			return fmt.Errorf("campaign: shard %d session %d extra: %w", shard, off, err)
		}
	}
	return nil
}

// runShard executes one shard: for each offset it draws the user keyed by
// (seed, shard, offset) and streams the paired session once per group,
// folding the metrics straight into fresh per-group accumulators. The
// result depends only on (identity, shard). retired counts player sessions
// as they finish, for live progress.
func runShard(ctx context.Context, cfg *Config, catalog *media.Catalog, shard int, retired *atomic.Int64) ([]*GroupAccum, Extra, error) {
	accums := NewGroupAccums(cfg.identity().Groups, cfg.SketchSize)
	var extra Extra
	if cfg.NewExtra != nil {
		extra = cfg.NewExtra()
	}
	n := cfg.identity().shardSessions(shard)
	for off := 0; off < n; off++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		u, video, fseed := shardDraw(cfg, catalog, shard, off)
		ms, err := abtest.PlayUser(ctx, u, video, cfg.Groups, cfg.Faults, fseed, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: shard %d session %d: %w", shard, off, err)
		}
		retired.Add(int64(len(cfg.Groups)))
		if err := shardFold(cfg, accums, extra, shard, off, ms); err != nil {
			return nil, nil, err
		}
	}
	return accums, extra, nil
}

// runShardBatch executes one shard through a worker-owned batch Runner.
// The kernel calls draw in ascending offset order with the exact keying
// runShard uses, and folds completed draws back in ascending offset order,
// so the accumulators receive the same values in the same order and the
// shard result is bit-identical to scalar execution.
func runShardBatch(ctx context.Context, cfg *Config, catalog *media.Catalog, shard int, r *batch.Runner) ([]*GroupAccum, Extra, error) {
	accums := NewGroupAccums(cfg.identity().Groups, cfg.SketchSize)
	var extra Extra
	if cfg.NewExtra != nil {
		extra = cfg.NewExtra()
	}
	n := cfg.identity().shardSessions(shard)
	err := r.RunShard(ctx, n,
		func(off int) (batch.Draw, error) {
			u, video, fseed := shardDraw(cfg, catalog, shard, off)
			return batch.Draw{User: u, Video: video, Fseed: fseed}, nil
		},
		func(off int, ms []metrics.Session) error {
			return shardFold(cfg, accums, extra, shard, off, ms)
		})
	if err != nil {
		if isContextErr(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("campaign: shard %d: %w", shard, err)
	}
	return accums, extra, nil
}

// Run executes the campaign (or its stripe). See RunContext.
func Run(cfg Config) (*Outcome, error) { return RunContext(context.Background(), cfg) }

// RunContext runs the campaign's stripe with cancellation. On cancellation
// it stops issuing shards, discards partially executed shards, saves a
// final checkpoint (when CheckpointPath is set) and returns the context's
// error alongside a non-nil Outcome carrying the resumable checkpoint — the
// caller decides whether a partial outcome is useful.
func RunContext(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	if cfg.Stripe < 0 || cfg.Stripe >= cfg.Stripes {
		return nil, fmt.Errorf("campaign: stripe %d of %d", cfg.Stripe, cfg.Stripes)
	}
	if cfg.NewExtra != nil && (cfg.Stripes != 1 || cfg.Resume != nil) {
		return nil, fmt.Errorf("campaign: NewExtra requires a single-stripe, non-resumed run (extras are not checkpointed)")
	}
	id := cfg.identity()
	catalog, err := media.NewCatalog(cfg.CatalogSize, cfg.Ladder, cfg.Seed)
	if err != nil {
		return nil, err
	}

	state := newCheckpoint(id)
	if cfg.Resume != nil {
		if err := cfg.Resume.validate(); err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(cfg.Resume.Identity, id) {
			return nil, fmt.Errorf("campaign: checkpoint identity does not match config; refusing to resume")
		}
		state = cfg.Resume
	}

	// This run's target shard set: the stripe's shards, minus those the
	// checkpoint already recorded.
	var todo []int
	stripeShards, stripeSessions := 0, int64(0)
	for s := cfg.Stripe; s < id.Shards(); s += cfg.Stripes {
		stripeShards++
		stripeSessions += int64(id.shardSessions(s))
		if !state.has(s) {
			todo = append(todo, s)
		}
	}

	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	out := &Outcome{Checkpoint: state}
	out.Stats.Parallelism = cfg.Parallelism
	out.Stats.Engine = engineName(cfg.Batch)

	type shardResult struct {
		shard  int
		accums []*GroupAccum
		extra  Extra
		err    error
	}
	// The merge window: the producer takes a token per shard, and when the
	// run's prefix can fold (it starts at the first shard this run will
	// execute) the collector releases a shard's token only once that shard
	// has folded into the prefix. That makes the memory ceiling a hard
	// guarantee: dispatched-but-unfolded shards — executing or parked —
	// never exceed the window, however the scheduler interleaves workers.
	// A stripe whose prefix cannot fold (its base shard belongs to another
	// stripe) legitimately retains every completed shard for the
	// cross-process merge, so it releases per recorded shard instead.
	window := 2 * cfg.Parallelism
	tokens := make(chan struct{}, window)
	shards := make(chan int)
	results := make(chan shardResult, window)

	go func() { // producer
		defer close(shards)
		for _, s := range todo {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case shards <- s:
			case <-ctx.Done():
				return
			}
		}
	}()

	// retired counts player sessions the execution path has actually
	// finished — the scalar path bumps it per paired draw, the batch kernel
	// per retired lane — so progress throughput and ETA reflect real
	// session completions even while shards are in flight.
	var retired atomic.Int64

	var wg sync.WaitGroup
	for n := 0; n < cfg.Parallelism; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each batch worker owns one Runner for its whole share of the
			// campaign: lane arenas and the per-title plan cache are reused
			// across every shard the worker executes.
			var runner *batch.Runner
			if cfg.Batch {
				runner = batch.NewRunner(batch.Config{
					Groups:   cfg.Groups,
					Faults:   cfg.Faults,
					Width:    cfg.BatchWidth,
					OnRetire: func() { retired.Add(1) },
				})
			}
			for s := range shards {
				var accums []*GroupAccum
				var extra Extra
				var err error
				if cfg.Batch {
					accums, extra, err = runShardBatch(ctx, &cfg, catalog, s, runner)
				} else {
					accums, extra, err = runShard(ctx, &cfg, catalog, s, &retired)
				}
				select {
				case results <- shardResult{shard: s, accums: accums, extra: extra, err: err}:
				case <-ctx.Done():
					return
				}
				if err != nil {
					cancel() // fail fast, like the A/B harness
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	// Collector: record shards as they complete, fold the in-order prefix,
	// checkpoint periodically, report progress.
	live := NewGroupAccums(id.Groups, cfg.SketchSize) // display-only, completion order
	resumedShards := stripeShards - len(todo)
	resumedSessions := stripeSessions
	for _, s := range todo {
		resumedSessions -= int64(id.shardSessions(s))
	}
	// Extension fold: parked extras wait until every lower shard has folded,
	// mirroring the checkpoint's prefix discipline so Outcome.Extra is as
	// order-independent as the report. todo is ascending (single stripe).
	var extraFold Extra
	extraParked := map[int]Extra{}
	extraNext := 0
	if cfg.NewExtra != nil {
		extraFold = cfg.NewExtra()
	}
	releaseOnFold := len(todo) > 0 && todo[0] == state.PrefixShards
	todoFolded := 0
	sinceSave := 0
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil && !isContextErr(r.err) {
				firstErr = r.err
			}
			cancel()
			continue
		}
		if cfg.OnShard != nil {
			if err := cfg.OnShard(r.shard, r.accums); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				cancel()
				continue
			}
		}
		// Tally this shard before record takes ownership of the accums:
		// when the shard seeds the prefix, later fold cascades merge
		// parked shards into the very slice r.accums points at, and a
		// tally after the fact would read those shards twice.
		for gi, a := range r.accums {
			out.Stats.Faults += a.Faults
			out.Stats.Retries += a.Retries
			out.Stats.Degradations += a.Degradations
			out.Stats.Failovers += a.Failovers
			// live is for display only; errors here cannot corrupt state.
			_ = live[gi].Merge(a)
		}
		if err := state.record(r.shard, r.accums); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			cancel()
			continue
		}
		if releaseOnFold {
			// record folded any newly contiguous shards (possibly a
			// cascade through parked ones); release their tokens.
			for todoFolded < len(todo) && todo[todoFolded] < state.PrefixShards {
				<-tokens
				todoFolded++
			}
		} else {
			<-tokens
		}
		if cfg.NewExtra != nil {
			extraParked[r.shard] = r.extra
			for extraNext < len(todo) {
				e, ok := extraParked[todo[extraNext]]
				if !ok {
					break
				}
				delete(extraParked, todo[extraNext])
				if err := extraFold.Merge(e); err != nil && firstErr == nil {
					firstErr = err
					cancel()
				}
				extraNext++
			}
		}
		if p := state.pending(); p > out.Stats.PeakPending {
			out.Stats.PeakPending = p
		}
		out.Stats.ShardsRun++
		ran := int64(id.shardSessions(r.shard))
		out.Stats.SessionsRun += ran
		out.Stats.PlayerSessions += ran * int64(len(id.Groups))

		elapsed := time.Since(start)
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(telemetry.Event{
				Kind:          telemetry.CampaignProgress,
				At:            elapsed,
				Chunk:         r.shard,
				RateIndex:     -1,
				PrevRateIndex: -1,
				Bytes:         resumedSessions + out.Stats.SessionsRun,
				Label:         cfg.Name,
			})
		}
		if cfg.Progress != nil {
			cfg.Progress(progressSnapshot(out.Stats, elapsed, resumedShards, resumedSessions, stripeShards, stripeSessions, retired.Load(), len(id.Groups), live))
		}
		sinceSave++
		if cfg.CheckpointPath != "" && sinceSave >= cfg.CheckpointEvery {
			if err := state.Save(cfg.CheckpointPath); err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
			sinceSave = 0
		}
	}

	out.Extra = extraFold
	out.Stats.Elapsed = time.Since(start)
	if cfg.CheckpointPath != "" && (sinceSave > 0 || out.Stats.ShardsRun == 0) {
		if err := state.Save(cfg.CheckpointPath); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if state.Complete() {
		out.Report = buildReport(state, false)
	}
	return out, nil
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func progressSnapshot(rs RunStats, elapsed time.Duration, resumedShards int, resumedSessions int64, stripeShards int, stripeSessions int64, retired int64, groups int, live []*GroupAccum) Progress {
	p := Progress{
		ShardsDone:    resumedShards + rs.ShardsRun,
		ShardsTotal:   stripeShards,
		SessionsDone:  resumedSessions + rs.SessionsRun,
		SessionsTotal: stripeSessions,
		Elapsed:       elapsed,
	}
	// Throughput and ETA come from sessions the execution path has retired
	// (scalar: per paired draw; batch: per kernel-retired lane), not from
	// shard completions — with wide shards in flight, retired sessions are
	// the honest measure of pace.
	if elapsed > 0 {
		p.SessionsPerSec = float64(retired) / elapsed.Seconds()
	}
	if retired > 0 && groups > 0 && p.SessionsDone < p.SessionsTotal {
		perSession := elapsed.Seconds() / (float64(retired) / float64(groups))
		p.ETA = time.Duration(perSession * float64(p.SessionsTotal-p.SessionsDone) * float64(time.Second))
	}
	var control float64
	for gi, a := range live {
		d := GroupDelta{
			Name:         a.Name,
			Sessions:     a.Sessions,
			RebufferRate: a.RebufferRate.Moments.Mean,
			AvgRateKbps:  a.AvgRate.Moments.Mean,
		}
		if gi == 0 {
			control = d.RebufferRate
		}
		if control > 0 {
			d.VsControl = d.RebufferRate / control
		}
		p.Groups = append(p.Groups, d)
	}
	return p
}

// ReportSchema identifies the report file format.
const ReportSchema = "bba-campaign-report/v1"

// Report is the campaign's final aggregate. Built from a completed
// checkpoint's folded prefix it is byte-identical for a given identity at
// any worker count or stripe split.
type Report struct {
	Schema string `json:"schema"`
	// Truncated marks a report built from an incomplete campaign (for
	// example after SIGINT): its aggregates cover only CompletedShards of
	// ShardsTotal shards, folded in shard-index order.
	Truncated       bool     `json:"truncated,omitempty"`
	Identity        Identity `json:"identity"`
	ShardsTotal     int      `json:"shards_total"`
	CompletedShards int      `json:"completed_shards"`
	// Sessions counts the paired draws covered; PlayerSessions counts
	// player sessions (paired draws × groups).
	Sessions       int64         `json:"sessions"`
	PlayerSessions int64         `json:"player_sessions"`
	Groups         []GroupReport `json:"groups"`
}

// buildReport folds the checkpoint's recorded shards in shard-index order
// (prefix first, then any parked shards ascending) into a report. For a
// complete checkpoint everything is already in the prefix and the result is
// the canonical deterministic aggregate; for a truncated report the fold
// covers whatever completed, still in pinned order.
func buildReport(c *Checkpoint, truncated bool) *Report {
	accums := cloneAccums(c.Prefix)
	if accums == nil {
		accums = NewGroupAccums(c.Identity.Groups, c.Identity.SketchSize)
	}
	for _, d := range c.Done {
		_ = mergeAccumSets(accums, d.Groups)
	}
	r := &Report{
		Schema:          ReportSchema,
		Truncated:       truncated,
		Identity:        c.Identity,
		ShardsTotal:     c.Identity.Shards(),
		CompletedShards: c.CompletedShards(),
		Sessions:        c.SessionsDone(),
	}
	for _, a := range accums {
		r.PlayerSessions += a.Sessions
		r.Groups = append(r.Groups, a.Report())
	}
	return r
}

// FinalReport builds the canonical report from a complete checkpoint, or an
// error if shards are missing.
func FinalReport(c *Checkpoint) (*Report, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if !c.Complete() {
		return nil, fmt.Errorf("campaign: checkpoint covers %d of %d shards", c.CompletedShards(), c.Identity.Shards())
	}
	return buildReport(c, false), nil
}

// TruncatedReport builds a best-effort report from an incomplete
// checkpoint, marked Truncated.
func TruncatedReport(c *Checkpoint) (*Report, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return buildReport(c, true), nil
}

// WriteJSON writes the report as indented JSON with a fixed field order —
// the byte form the determinism tests compare.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
