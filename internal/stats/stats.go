// Package stats provides the descriptive statistics and significance tests
// the paper's evaluation relies on: means, percentiles, variance across
// repeated days (the error bars in Figures 7, 8, 14, 19 and 24), the
// 75th/25th and median/95th percentile throughput-variability ratios from
// Sections 1–2, and the two-sample significance tests behind statements such
// as "the hypothesis that BBA-1 and Rmin Always share the same distribution
// is not rejected at the 95% confidence level (p-value = 0.74)".
//
// Everything is implemented from scratch on the standard library; the only
// nontrivial piece is the regularized incomplete beta function used for the
// Student-t CDF.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned by functions that cannot produce a meaningful
// statistic from an empty sample.
var ErrNoData = errors.New("stats: empty sample")

// CheckFinite returns ErrNonFinite if any sample in any slice is NaN or
// ±Inf. Every sort-based statistic calls it first: sort.Float64s silently
// misorders NaN, which would corrupt quantiles without any visible failure.
func CheckFinite(xss ...[]float64) error {
	for _, xs := range xss {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return ErrNonFinite
			}
		}
	}
	return nil
}

// DropNonFinite returns xs with NaN/±Inf samples removed, and how many were
// dropped. It never modifies xs; when nothing is dropped it returns xs
// itself.
func DropNonFinite(xs []float64) ([]float64, int) {
	dropped := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dropped++
		}
	}
	if dropped == 0 {
		return xs, 0
	}
	kept := make([]float64, 0, len(xs)-dropped)
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			kept = append(kept, x)
		}
	}
	return kept, dropped
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
// Non-finite samples propagate into the result (the sum makes them visible
// as NaN/±Inf rather than a silently wrong finite number); callers that
// need rejection use CheckFinite or DropNonFinite first.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs,
// or 0 when fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns ErrNoData for an empty
// sample, ErrNonFinite when xs contains NaN or ±Inf (sorting would silently
// misorder them), and does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if err := CheckFinite(xs); err != nil {
		return 0, err
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// QuartileRatio returns the ratio of the 75th to the 25th percentile — the
// paper's definition of within-session throughput variation (footnote 1:
// the Figure 1 trace has a ratio of 5.6). It returns ErrNoData for an empty
// sample and +Inf when the 25th percentile is zero but the 75th is not.
func QuartileRatio(xs []float64) (float64, error) {
	p75, err := Percentile(xs, 75)
	if err != nil {
		return 0, err
	}
	p25, _ := Percentile(xs, 25)
	if p25 == 0 {
		if p75 == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return p75 / p25, nil
}

// MedianTo95Ratio returns median/p95, the Section 2.2 statistic: "roughly
// 10% of sessions experience a median throughput less than half of the 95th
// percentile throughput" corresponds to this ratio being below 0.5.
func MedianTo95Ratio(xs []float64) (float64, error) {
	med, err := Median(xs)
	if err != nil {
		return 0, err
	}
	p95, _ := Percentile(xs, 95)
	if p95 == 0 {
		return 1, nil
	}
	return med / p95, nil
}

// Summary bundles the descriptive statistics reported for a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrNoData for an empty
// sample and ErrNonFinite when xs contains NaN or ±Inf.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	if err := CheckFinite(xs); err != nil {
		return Summary{}, err
	}
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.P25, _ = Percentile(xs, 25)
	s.Median, _ = Percentile(xs, 50)
	s.P75, _ = Percentile(xs, 75)
	s.P95, _ = Percentile(xs, 95)
	return s, nil
}

// BootstrapRatioCI estimates a percentile-bootstrap confidence interval for
// the ratio mean(treatment)/mean(control) — the statistic behind the
// paper's "reduce the rebuffer rate by 10–20%" claims. It resamples both
// groups with replacement resamples times (deterministically from seed) and
// returns the (1−conf)/2 and 1−(1−conf)/2 percentiles of the resampled
// ratios. Each group needs at least two observations and the control a
// non-zero mean.
func BootstrapRatioCI(treatment, control []float64, resamples int, conf float64, seed int64) (lo, hi float64, err error) {
	if len(treatment) < 2 || len(control) < 2 {
		return 0, 0, ErrNoData
	}
	if err := CheckFinite(treatment, control); err != nil {
		return 0, 0, err
	}
	if Mean(control) == 0 {
		return 0, 0, errors.New("stats: control mean is zero")
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.9
	}
	rng := rand.New(rand.NewSource(seed))
	ratios := make([]float64, 0, resamples)
	resample := func(xs []float64) float64 {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		return sum / float64(len(xs))
	}
	for i := 0; i < resamples; i++ {
		c := resample(control)
		if c == 0 {
			continue // a degenerate resample of a sparse control group
		}
		ratios = append(ratios, resample(treatment)/c)
	}
	if len(ratios) < 2 {
		return 0, 0, ErrNoData
	}
	alpha := (1 - conf) / 2
	lo, err = Percentile(ratios, 100*alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Percentile(ratios, 100*(1-alpha))
	return lo, hi, err
}

// Autocorrelation returns the lag-k sample autocorrelation of xs — the
// statistic that distinguishes a scene-structured VBR chunk-size process
// (strong short-lag correlation) from independent noise. It returns
// ErrNoData when fewer than k+2 samples are available, and 0 for a
// constant series.
func Autocorrelation(xs []float64, k int) (float64, error) {
	if k < 0 || len(xs) < k+2 {
		return 0, ErrNoData
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		d := xs[i] - m
		den += d * d
		if i+k < len(xs) {
			num += d * (xs[i+k] - m)
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// TTestResult reports a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs a two-sided Welch two-sample t-test of the null
// hypothesis that xs and ys have equal means. This is the test behind the
// paper's footnotes 4 and 5 (p-values 0.25 and 0.74 for BBA-0/BBA-1 versus
// Rmin Always off-peak). Each sample needs at least two observations; a
// sample containing NaN or ±Inf is rejected with ErrNonFinite rather than
// yielding a NaN statistic.
func WelchTTest(xs, ys []float64) (TTestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, ErrNoData
	}
	if err := CheckFinite(xs, ys); err != nil {
		return TTestResult{}, err
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		// Identical constant samples: no evidence against the null.
		if mx == my {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / math.Sqrt(se2)
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	p := 2 * studentTTail(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTTail returns P(T > t) for T ~ Student-t with df degrees of
// freedom, t ≥ 0.
func studentTTail(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4 form).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	logTerm := a*math.Log(x) + b*math.Log(1-x) - lbeta
	if x < (a+1)/(a+b+2) {
		return math.Exp(logTerm) / a * betaCF(a, b, x)
	}
	// Use the symmetry relation I_x(a,b) = 1 − I_{1−x}(b,a) for convergence.
	return 1 - math.Exp(logTerm)/b*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
