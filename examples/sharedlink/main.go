// Shared bottleneck (Section 8): three BBA-2 players and one long-lived
// bulk download compete for a single 9 Mb/s link. With full buffers the
// players fall into the ON-OFF pattern, everyone converges to a fair
// share, and nobody spirals downward.
//
//	go run ./examples/sharedlink
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/sharedlink"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	video, err := media.NewCBR("sharedlink-demo", media.DefaultLadder(), media.DefaultChunkDuration, 900)
	if err != nil {
		log.Fatal(err)
	}

	mkPlayer := func(startAt time.Duration) sharedlink.PlayerConfig {
		return sharedlink.PlayerConfig{
			Algorithm:  abr.NewBBA2(),
			Stream:     abr.NewStream(video, 0),
			WatchLimit: 12 * time.Minute,
			StartAt:    startAt,
		}
	}

	res, err := sharedlink.Run(sharedlink.Config{
		Trace:     trace.Constant(9*units.Mbps, time.Hour),
		BulkFlows: 1,
		Players: []sharedlink.PlayerConfig{
			mkPlayer(0),
			mkPlayer(30 * time.Second),
			mkPlayer(time.Minute),
		},
		Horizon: 30 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "player\tavg rate\tsteady rate\trebuffers\tswitches")
	for i, p := range res.Players {
		fmt.Fprintf(w, "%d\t%.0f kb/s\t%.0f kb/s\t%d\t%d\n",
			i, p.AvgRateKbps(), p.SteadyAvgRateKbps(), p.Rebuffers, p.Switches)
	}
	w.Flush()

	fmt.Printf("\nJain fairness index over delivered rates: %.3f\n", res.FairnessIndex())
	fmt.Printf("bulk flow moved %.0f MB alongside the players\n", float64(res.BulkBytes)/1e6)
	fmt.Println("fair share on a 9 Mb/s link with 4 flows is 2.25 Mb/s; with players")
	fmt.Println("ON-OFF at full buffers the bulk flow soaks up the OFF periods")
}
