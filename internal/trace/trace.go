// Package trace models end-to-end network capacity as a function of time.
//
// The paper's whole argument starts from Figure 1: the throughput a video
// client observes varies wildly within a session (17 Mb/s down to 500 kb/s,
// a 75th/25th percentile ratio of 5.6). An ABR algorithm observes capacity
// only through per-chunk download durations, so a piecewise-constant
// capacity trace driven through the download integral reproduces exactly
// what a real algorithm would see.
//
// A Trace is a finite sequence of (duration, rate) segments; beyond its end
// the final rate persists, so traces compose naturally with sessions of any
// length. Generators produce the trace families used by the experiments:
// constant and step traces for the worked examples (Figures 4 and 16),
// Markov-modulated traces calibrated to the paper's variability statistics
// for the A/B population, and outage overlays for Section 7.1.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"bba/internal/units"
)

// Segment is a span of constant capacity.
type Segment struct {
	Duration time.Duration
	Rate     units.BitRate
}

// Trace is an immutable piecewise-constant capacity process. The zero value
// is unusable; construct traces with New or a generator. After the final
// segment the last rate persists indefinitely.
type Trace struct {
	segments []Segment
	starts   []time.Duration // start time of each segment
	ends     []time.Duration // end time of each segment (starts[i]+Duration)
	rateF    []float64       // float64(Rate), hoisted for the download integrals
	total    time.Duration
}

// ErrEmpty is returned when constructing a trace with no segments.
var ErrEmpty = errors.New("trace: no segments")

// New builds a trace from segments. Segments with non-positive duration or
// negative rate are rejected; a zero rate is a valid outage.
func New(segments []Segment) (*Trace, error) {
	if len(segments) == 0 {
		return nil, ErrEmpty
	}
	t := &Trace{
		segments: make([]Segment, len(segments)),
		starts:   make([]time.Duration, len(segments)),
		ends:     make([]time.Duration, len(segments)),
		rateF:    make([]float64, len(segments)),
	}
	copy(t.segments, segments)
	for i, s := range t.segments {
		if s.Duration <= 0 {
			return nil, fmt.Errorf("trace: segment %d has non-positive duration %v", i, s.Duration)
		}
		if s.Rate < 0 {
			return nil, fmt.Errorf("trace: segment %d has negative rate %v", i, s.Rate)
		}
		t.starts[i] = t.total
		t.total += s.Duration
		t.ends[i] = t.total
		t.rateF[i] = float64(s.Rate)
	}
	return t, nil
}

// MustNew is New but panics on error, for tests and literals.
func MustNew(segments []Segment) *Trace {
	t, err := New(segments)
	if err != nil {
		panic(err)
	}
	return t
}

// Total returns the summed duration of the explicit segments.
func (t *Trace) Total() time.Duration { return t.total }

// Segments returns a copy of the trace's segments.
func (t *Trace) Segments() []Segment {
	out := make([]Segment, len(t.segments))
	copy(out, t.segments)
	return out
}

// index returns the segment index containing time at (clamped to the last
// segment beyond the end).
func (t *Trace) index(at time.Duration) int {
	if at < 0 {
		return 0
	}
	// Find the first segment whose start is after at, then step back.
	i := sort.Search(len(t.starts), func(i int) bool { return t.starts[i] > at })
	if i == 0 {
		return 0
	}
	return i - 1
}

// RateAt returns the capacity at time at. Before zero it reports the first
// segment's rate; after the end, the last segment's rate.
func (t *Trace) RateAt(at time.Duration) units.BitRate {
	return t.segments[t.index(at)].Rate
}

// BytesBetween integrates capacity over [from, to] and returns the number of
// bytes deliverable in that window.
func (t *Trace) BytesBetween(from, to time.Duration) int64 {
	if to <= from {
		return 0
	}
	if from < 0 {
		from = 0
	}
	n, _ := t.bytesBetweenFrom(t.index(from), from, to)
	return n
}

// bytesBetweenFrom is the BytesBetween core, starting in segment i (which
// must contain from). It also returns the segment index it finished in, so
// a Cursor can resume from there. Both the stateless API and the Cursor run
// this exact code, so their results are bit-identical.
func (t *Trace) bytesBetweenFrom(i int, from, to time.Duration) (int64, int) {
	var bits float64
	cursor := from
	for cursor < to {
		segEnd := t.total
		if i < len(t.segments)-1 {
			segEnd = t.starts[i] + t.segments[i].Duration
		} else {
			segEnd = to // last segment extends forever
		}
		end := segEnd
		if end > to {
			end = to
		}
		bits += float64(t.segments[i].Rate) * (end - cursor).Seconds()
		cursor = end
		if i < len(t.segments)-1 && cursor >= t.starts[i]+t.segments[i].Duration {
			i++
		}
	}
	return int64(bits / 8), i
}

// DownloadTime returns how long a transfer of n bytes starting at time
// start takes. If the trace ends in a zero-rate segment and the transfer
// cannot complete, it returns (0, false).
func (t *Trace) DownloadTime(start time.Duration, n int64) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	if start < 0 {
		start = 0
	}
	d, _, ok := t.downloadTimeFrom(t.index(start), start, n)
	return d, ok
}

// downloadTimeFrom is the DownloadTime core, starting in segment i (which
// must contain start). It also returns the segment index the transfer
// completed in, so a Cursor can resume from there. Both the stateless API
// and the Cursor run this exact code, so their results are bit-identical.
func (t *Trace) downloadTimeFrom(i int, start time.Duration, n int64) (time.Duration, int, bool) {
	remaining := float64(n * 8) // bits
	cursor := start
	last := len(t.segments) - 1
	for {
		rate := t.rateF[i]
		if i == last {
			if rate <= 0 {
				return 0, i, false
			}
			cursor += units.SecondsToDuration(remaining / rate)
			return cursor - start, i, true
		}
		segEnd := t.ends[i]
		span := (segEnd - cursor).Seconds()
		capacity := rate * span
		if capacity >= remaining && rate > 0 {
			cursor += units.SecondsToDuration(remaining / rate)
			return cursor - start, i, true
		}
		remaining -= capacity
		cursor = segEnd
		i++
	}
}

// Scale returns a new trace with every rate multiplied by f (f ≥ 0).
func (t *Trace) Scale(f float64) *Trace {
	segs := t.Segments()
	for i := range segs {
		segs[i].Rate = segs[i].Rate.Scale(f)
	}
	return MustNew(segs)
}

// Rates returns the per-segment rates in kb/s, weighted by sampling the
// trace once per sampleEvery interval. This matches how the paper computes
// summary variability statistics from regularly reported measurements.
func (t *Trace) Rates(sampleEvery time.Duration) []float64 {
	if sampleEvery <= 0 {
		sampleEvery = time.Second
	}
	var out []float64
	for at := time.Duration(0); at < t.total; at += sampleEvery {
		out = append(out, t.RateAt(at).Kilobits())
	}
	if len(out) == 0 {
		out = append(out, t.RateAt(0).Kilobits())
	}
	return out
}

// Constant returns a trace with a single fixed-rate segment.
func Constant(rate units.BitRate, d time.Duration) *Trace {
	return MustNew([]Segment{{Duration: d, Rate: rate}})
}

// Step returns a trace that runs at before until at, then switches to after
// for the remainder (total duration total). It reproduces the Figure 4
// scenario ("a video starts streaming at 3Mb/s over a 5Mb/s network; after
// 25s the available capacity drops to 350kb/s").
func Step(before, after units.BitRate, at, total time.Duration) *Trace {
	if at <= 0 {
		return Constant(after, total)
	}
	if at >= total {
		return Constant(before, total)
	}
	return MustNew([]Segment{
		{Duration: at, Rate: before},
		{Duration: total - at, Rate: after},
	})
}

// MarkovConfig parameterizes the Markov-modulated capacity generator used
// for the synthetic user population.
//
// The hidden state is a multiplicative factor applied to Base; on each
// transition a new factor is drawn log-normally with log-standard-deviation
// Sigma (so the marginal 75th/25th percentile ratio is exp(2·0.6745·Sigma)),
// and the state persists for an exponentially distributed dwell time. Sigma
// near 1.28 reproduces the paper's Figure 1 ratio of 5.6; Sigma near zero
// gives the stable off-peak environment of Section 4.2.
type MarkovConfig struct {
	Base      units.BitRate // median capacity
	Sigma     float64       // log-stddev of the state factor
	MeanDwell time.Duration // average state-holding time
	Duration  time.Duration // total trace length
	Floor     units.BitRate // capacity never drops below this (0 = 64 kb/s default)
	Ceiling   units.BitRate // capacity never exceeds this (0 = 100 Mb/s default)
}

// SigmaForQuartileRatio converts a desired 75th/25th percentile throughput
// ratio into the log-normal Sigma that produces it.
func SigmaForQuartileRatio(ratio float64) float64 {
	if ratio <= 1 {
		return 0
	}
	return math.Log(ratio) / (2 * 0.6745)
}

// Markov generates a Markov-modulated capacity trace. It is deterministic
// given rng's state.
func Markov(cfg MarkovConfig, rng *rand.Rand) *Trace {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Hour
	}
	if cfg.MeanDwell <= 0 {
		cfg.MeanDwell = 10 * time.Second
	}
	if cfg.Base <= 0 {
		cfg.Base = 5 * units.Mbps
	}
	floor := cfg.Floor
	if floor <= 0 {
		floor = 64 * units.Kbps
	}
	ceiling := cfg.Ceiling
	if ceiling <= 0 {
		ceiling = 100 * units.Mbps
	}
	// Dwell times average MeanDwell, so presizing near the expected count
	// keeps the generator to one allocation for typical traces.
	segs := make([]Segment, 0, cfg.Duration/cfg.MeanDwell+cfg.Duration/cfg.MeanDwell/4+1)
	var elapsed time.Duration
	for elapsed < cfg.Duration {
		factor := math.Exp(cfg.Sigma * rng.NormFloat64())
		rate := cfg.Base.Scale(factor).Clamp(floor, ceiling)
		dwell := units.SecondsToDuration(rng.ExpFloat64() * cfg.MeanDwell.Seconds())
		if dwell < 100*time.Millisecond {
			dwell = 100 * time.Millisecond
		}
		if elapsed+dwell > cfg.Duration {
			dwell = cfg.Duration - elapsed
		}
		segs = append(segs, Segment{Duration: dwell, Rate: rate})
		elapsed += dwell
	}
	if len(segs) == 0 {
		segs = append(segs, Segment{Duration: cfg.Duration, Rate: cfg.Base})
	}
	return MustNew(segs)
}

// Outage is a span of zero capacity overlaid on a base trace, modelling the
// Section 7.1 scenario of a DSL retrain or WiFi interference burst.
type Outage struct {
	Start    time.Duration
	Duration time.Duration
}

// Override forces a span of a base trace to a fixed rate. A zero Rate is an
// outage; a low non-zero Rate models a sustained congestion episode of the
// kind that produces the deep fades in Figure 1.
type Override struct {
	Start    time.Duration
	Duration time.Duration
	Rate     units.BitRate
}

// WithOutages returns a copy of base with capacity forced to zero during
// each outage. Outages must not overlap and must start within the trace.
func WithOutages(base *Trace, outages []Outage) (*Trace, error) {
	ov := make([]Override, len(outages))
	for i, o := range outages {
		ov[i] = Override{Start: o.Start, Duration: o.Duration}
	}
	return WithOverrides(base, ov)
}

// WithOverrides returns a copy of base with each override span forced to
// its rate. Overrides must not overlap, must have positive durations and
// non-negative rates, and must start within the trace.
func WithOverrides(base *Trace, overrides []Override) (*Trace, error) {
	sorted := make([]Override, len(overrides))
	copy(sorted, overrides)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var segs []Segment
	cursor := time.Duration(0)
	appendSpan := func(from, to time.Duration) {
		for from < to {
			i := base.index(from)
			segEnd := base.starts[i] + base.segments[i].Duration
			if i == len(base.segments)-1 && segEnd < to {
				segEnd = to
			}
			end := segEnd
			if end > to {
				end = to
			}
			if end > from {
				segs = append(segs, Segment{Duration: end - from, Rate: base.segments[i].Rate})
			}
			from = end
		}
	}
	for i, o := range sorted {
		if o.Duration <= 0 {
			return nil, fmt.Errorf("trace: override %d has non-positive duration", i)
		}
		if o.Rate < 0 {
			return nil, fmt.Errorf("trace: override %d has negative rate", i)
		}
		if o.Start < cursor {
			return nil, fmt.Errorf("trace: override %d overlaps a previous override", i)
		}
		if o.Start > base.Total() {
			return nil, fmt.Errorf("trace: override %d starts after trace end", i)
		}
		appendSpan(cursor, o.Start)
		segs = append(segs, Segment{Duration: o.Duration, Rate: o.Rate})
		cursor = o.Start + o.Duration
	}
	if cursor < base.Total() {
		appendSpan(cursor, base.Total())
	}
	return New(segs)
}

// Concat joins traces end to end. It requires at least one trace.
func Concat(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, ErrEmpty
	}
	var segs []Segment
	for _, t := range traces {
		segs = append(segs, t.segments...)
	}
	return New(segs)
}

// Repeat tiles the trace n times (n ≥ 1).
func (t *Trace) Repeat(n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: repeat count %d", n)
	}
	segs := make([]Segment, 0, n*len(t.segments))
	for i := 0; i < n; i++ {
		segs = append(segs, t.segments...)
	}
	return New(segs)
}

// Slice returns the sub-trace covering [from, to) of t; the usual
// persistence rule applies beyond to. from must lie within the trace and
// before to.
func (t *Trace) Slice(from, to time.Duration) (*Trace, error) {
	if from < 0 || from >= to || from >= t.total {
		return nil, fmt.Errorf("trace: bad slice [%v, %v) of a %v trace", from, to, t.total)
	}
	var segs []Segment
	cursor := from
	for cursor < to {
		i := t.index(cursor)
		segEnd := t.starts[i] + t.segments[i].Duration
		if i == len(t.segments)-1 && segEnd < to {
			segEnd = to
		}
		end := segEnd
		if end > to {
			end = to
		}
		segs = append(segs, Segment{Duration: end - cursor, Rate: t.segments[i].Rate})
		cursor = end
	}
	return New(segs)
}

// WriteCSV writes the trace as "duration_seconds,rate_bps" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.segments {
		if _, err := fmt.Fprintf(bw, "%.6f,%d\n", s.Duration.Seconds(), int64(s.Rate)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Blank lines and lines starting
// with '#' are ignored.
func ReadCSV(r io.Reader) (*Trace, error) {
	var segs []Segment
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(parts))
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad duration: %w", line, err)
		}
		bps, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rate: %w", line, err)
		}
		segs = append(segs, Segment{Duration: units.SecondsToDuration(secs), Rate: units.BitRate(bps)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(segs)
}
