package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
		if err := w.Add(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.N != 1000 {
		t.Fatalf("N = %d", w.N)
	}
	if m := Mean(xs); math.Abs(w.Mean-m) > 1e-12*math.Abs(m) {
		t.Errorf("Mean = %v, batch %v", w.Mean, m)
	}
	if v := Variance(xs); math.Abs(w.Variance()-v) > 1e-9*v {
		t.Errorf("Variance = %v, batch %v", w.Variance(), v)
	}
	if s := Sum(xs); math.Abs(w.Sum()-s) > 1e-9*math.Abs(s) {
		t.Errorf("Sum = %v, batch %v", w.Sum(), s)
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if w.Min != min || w.Max != max {
		t.Errorf("Min/Max = %v/%v, want %v/%v", w.Min, w.Max, min, max)
	}
}

// Sum is a test helper: the plain sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestWelfordRejectsNonFinite(t *testing.T) {
	var w Welford
	if err := w.Add(1); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := w.Add(bad); err != ErrNonFinite {
			t.Errorf("Add(%v) err = %v, want ErrNonFinite", bad, err)
		}
	}
	if w.N != 1 || w.Mean != 1 {
		t.Errorf("rejected samples mutated the accumulator: %+v", w)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 40
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	// Split into four shard accumulators and fold left-to-right.
	var folded Welford
	for s := 0; s < 4; s++ {
		var shard Welford
		for _, x := range xs[s*125 : (s+1)*125] {
			shard.Add(x)
		}
		folded.Merge(shard)
	}
	if folded.N != whole.N {
		t.Fatalf("N = %d, want %d", folded.N, whole.N)
	}
	if math.Abs(folded.Mean-whole.Mean) > 1e-12 {
		t.Errorf("merged Mean = %v, sequential %v", folded.Mean, whole.Mean)
	}
	if rel := math.Abs(folded.Variance()-whole.Variance()) / whole.Variance(); rel > 1e-10 {
		t.Errorf("merged Variance = %v, sequential %v", folded.Variance(), whole.Variance())
	}
	if folded.Min != whole.Min || folded.Max != whole.Max {
		t.Errorf("merged extrema %v/%v, want %v/%v", folded.Min, folded.Max, whole.Min, whole.Max)
	}
}

// TestWelfordMergeDeterministicFold pins the determinism contract: the same
// shard accumulators folded in the same order produce bit-identical state,
// regardless of how the shards themselves were computed.
func TestWelfordMergeDeterministicFold(t *testing.T) {
	build := func() Welford {
		rng := rand.New(rand.NewSource(3))
		var folded Welford
		for s := 0; s < 8; s++ {
			var shard Welford
			for i := 0; i < 100; i++ {
				shard.Add(rng.NormFloat64())
			}
			folded.Merge(shard)
		}
		return folded
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("fold not bit-identical: %+v vs %+v", a, b)
	}
}

// TestSketchExactUnderCapacity is the exactness test the issue requires:
// while the sketch has seen no more samples than it retains, every quantile
// matches Percentile on the raw sample bit for bit.
func TestSketchExactUnderCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 17, 64} {
		q := NewQuantileSketch(64)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			if err := q.Add(xs[i], uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if !q.Exact() {
			t.Fatalf("n=%d: sketch not exact under capacity", n)
		}
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 95, 100} {
			want, err := Percentile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("n=%d p=%v: sketch %v, Percentile %v", n, p, got, want)
			}
		}
	}
}

// TestSketchMergeAssociative pins the property sharding rests on: merging
// per-shard sketches gives exactly the sketch of the unsharded stream, for
// any shard partitioning.
func TestSketchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k = 5000, 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	whole := NewQuantileSketch(k)
	for i, x := range xs {
		whole.Add(x, uint64(i))
	}
	for _, shards := range []int{2, 4, 7} {
		merged := NewQuantileSketch(k)
		per := (n + shards - 1) / shards
		for s := 0; s < shards; s++ {
			shard := NewQuantileSketch(k)
			for i := s * per; i < min((s+1)*per, n); i++ {
				shard.Add(xs[i], uint64(i))
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Seen != whole.Seen || len(merged.Entries) != len(whole.Entries) {
			t.Fatalf("shards=%d: seen/len mismatch", shards)
		}
		for i := range merged.Entries {
			if merged.Entries[i] != whole.Entries[i] {
				t.Fatalf("shards=%d: entry %d differs: %+v vs %+v",
					shards, i, merged.Entries[i], whole.Entries[i])
			}
		}
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, k = 200000, 512
	q := NewQuantileSketch(k)
	for i := 0; i < n; i++ {
		q.Add(rng.Float64(), uint64(i))
	}
	if q.Exact() {
		t.Fatal("sketch claims exactness over capacity")
	}
	if len(q.Entries) != k {
		t.Fatalf("retained %d, want %d", len(q.Entries), k)
	}
	for _, p := range []float64{25, 50, 75, 95} {
		got, err := q.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Uniform[0,1): the true quantile is p/100; bottom-k of 512 gives
		// standard error ≈ 0.5/√512 ≈ 0.022.
		if math.Abs(got-p/100) > 0.08 {
			t.Errorf("p%v = %v, want ≈%v", p, got, p/100)
		}
	}
}

func TestSketchRejectsNonFiniteAndDuplicates(t *testing.T) {
	q := NewQuantileSketch(8)
	if err := q.Add(math.NaN(), 1); err != ErrNonFinite {
		t.Errorf("NaN err = %v", err)
	}
	if err := q.Add(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(2, 7); err == nil {
		t.Error("duplicate key accepted")
	}
	if q.Seen != 1 {
		t.Errorf("Seen = %d, want 1", q.Seen)
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	q := NewQuantileSketch(16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		q.Add(rng.NormFloat64(), uint64(i))
	}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.K != q.K || back.Seen != q.Seen || len(back.Entries) != len(q.Entries) {
		t.Fatal("round trip lost state")
	}
	for i := range q.Entries {
		if back.Entries[i] != q.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, back.Entries[i], q.Entries[i])
		}
	}
}

func TestDistFiltersNonFinite(t *testing.T) {
	d := NewDist(8)
	if err := d.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(math.Inf(1), 1); err != ErrNonFinite {
		t.Errorf("Inf err = %v", err)
	}
	if err := d.Add(2, 2); err != nil {
		t.Fatal(err)
	}
	if d.NonFinite != 1 {
		t.Errorf("NonFinite = %d, want 1", d.NonFinite)
	}
	if d.Moments.N != 2 {
		t.Errorf("N = %d, want 2", d.Moments.N)
	}
	var o Dist
	o = NewDist(8)
	o.Add(math.NaN(), 10)
	o.Add(3, 11)
	if err := d.Merge(o); err != nil {
		t.Fatal(err)
	}
	if d.NonFinite != 2 || d.Moments.N != 3 {
		t.Errorf("merged NonFinite/N = %d/%d, want 2/3", d.NonFinite, d.Moments.N)
	}
}
