// Package collect is the fleet telemetry collection pipeline: the
// client-side Shipper batches session events and shard aggregates into
// sequence-numbered, checksummed frames and ships them over UDP or HTTP
// with retry and bounded on-disk spill; the server-side Collector decodes
// frames, verifies checksums, dedups by (run, session, seq) so
// at-least-once delivery becomes exactly-once aggregation, and folds shard
// summaries into internal/campaign accumulators to produce the same
// byte-identical report a local run computes.
//
// The paper's entire evidence base is per-session client logs shipped from
// millions of players to a central service and aggregated there (§3); the
// same collection substrate is what makes randomized experiments on a live
// service possible (Yan et al., NSDI 2020). This package is that substrate
// in miniature: a lossy, reordering, duplicating network sits between the
// player fleet and the aggregator, and the aggregate must not care.
//
// Delivery semantics. Frames are keyed (run id, session id, seq). The
// shipper retries until the collector acknowledges (HTTP) or fires and
// forgets (UDP); the collector admits each key at most once. Aggregation
// is therefore exactly-once over whatever frames arrive, and — because the
// campaign checkpoint folds shards in shard-index order regardless of
// arrival order — the remote report is byte-identical to a local run of
// the same identity once every shard frame has landed.
package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PayloadKind identifies what a frame carries.
type PayloadKind uint8

const (
	// PayloadEvents is a batch of telemetry events encoded as journal
	// JSONL lines (telemetry.AppendJSONL), newline-terminated.
	PayloadEvents PayloadKind = iota + 1
	// PayloadRunStart announces a campaign run: the payload is the JSON
	// campaign.Identity the collector aggregates under.
	PayloadRunStart
	// PayloadShard is one completed shard's accumulators: the payload is a
	// JSON campaign.ShardAccums.
	PayloadShard
	// PayloadRunEnd marks the run complete on the sender side; the
	// collector finalizes the report once every shard has arrived.
	PayloadRunEnd
)

// String returns the snake_case name used in collector metrics.
func (k PayloadKind) String() string {
	switch k {
	case PayloadEvents:
		return "events"
	case PayloadRunStart:
		return "run_start"
	case PayloadShard:
		return "shard"
	case PayloadRunEnd:
		return "run_end"
	}
	return "unknown"
}

// Reliable reports whether the kind rides the reliable lane: the shipper
// never drops it and Flush waits for its acknowledgement.
func (k PayloadKind) Reliable() bool { return k != PayloadEvents }

// Frame is one unit of shipment. Run, Session and Seq form the dedup key:
// Seq increases per (Run, Session) sender stream, so replays and retries
// are recognizable however they arrive.
type Frame struct {
	// Run identifies the campaign or capture run (1–255 bytes).
	Run string
	// Session identifies the sender stream within the run; two processes
	// shipping the same run must use distinct Session ids.
	Session uint64
	// Seq is the frame's sequence number within (Run, Session).
	Seq uint64
	// Kind says how to interpret Payload.
	Kind PayloadKind
	// Payload is the frame body (at most MaxPayload bytes).
	Payload []byte
}

// Wire layout (little-endian):
//
//	magic   [2]byte  0xB3 0xAC
//	version uint8    1
//	kind    uint8
//	runLen  uint8    1..255
//	run     [runLen]byte
//	session uint64
//	seq     uint64
//	payLen  uint32   0..MaxPayload
//	payload [payLen]byte
//	crc     uint32   CRC-32C over everything above
//
// The encoding is canonical — decoding a valid frame and re-encoding it
// reproduces the input bytes exactly, the property the fuzz round-trip
// target pins.
const (
	frameVersion = 1
	// headerLen is the fixed part of the frame before the run id.
	headerLen = 5
	// tailLen is session + seq + payLen + crc.
	tailLen = 8 + 8 + 4 + 4
	// MaxPayload bounds a frame body; larger payloads must be split. It
	// also bounds what a decoder will buffer for one frame, so a corrupt
	// length field cannot demand unbounded memory.
	MaxPayload = 1 << 20
	// MaxFrame is the largest possible encoded frame.
	MaxFrame = headerLen + 255 + tailLen + MaxPayload
)

var (
	frameMagic = [2]byte{0xB3, 0xAC}
	crcTable   = crc32.MakeTable(crc32.Castagnoli)

	// ErrShortFrame reports a frame cut off mid-encoding: the decoder
	// needs more bytes. Stream readers treat it as "wait for more input";
	// datagram readers treat it as corruption.
	ErrShortFrame = errors.New("collect: short frame")
	// ErrBadFrame reports a structurally invalid frame (magic, version,
	// run length or payload length out of range).
	ErrBadFrame = errors.New("collect: bad frame")
	// ErrChecksum reports a frame whose CRC does not match its contents.
	ErrChecksum = errors.New("collect: frame checksum mismatch")
)

// AppendFrame appends the canonical encoding of f to dst. It panics if the
// run id or payload exceed the format's bounds — both are sized by the
// shipper, so an overflow is a programming error, not an input error.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Run) == 0 || len(f.Run) > 255 {
		panic(fmt.Sprintf("collect: run id length %d outside 1..255", len(f.Run)))
	}
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("collect: payload %d exceeds MaxPayload", len(f.Payload)))
	}
	start := len(dst)
	dst = append(dst, frameMagic[0], frameMagic[1], frameVersion, byte(f.Kind), byte(len(f.Run)))
	dst = append(dst, f.Run...)
	dst = binary.LittleEndian.AppendUint64(dst, f.Session)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// EncodedLen returns the encoded size of a frame with the given run id and
// payload lengths.
func EncodedLen(runLen, payloadLen int) int {
	return headerLen + runLen + tailLen + payloadLen
}

// DecodeFrame decodes the first frame in b, returning the frame and the
// number of bytes it consumed. The returned Frame's Run and Payload alias
// b — callers that retain them beyond b's lifetime must copy.
//
// ErrShortFrame means b ends mid-frame (a stream reader should read more);
// ErrBadFrame and ErrChecksum mean the bytes can never become a valid
// frame. DecodeFrame never panics, whatever the input: truncated, corrupt
// and adversarial length fields all surface as errors.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < headerLen {
		return Frame{}, 0, ErrShortFrame
	}
	if b[0] != frameMagic[0] || b[1] != frameMagic[1] {
		return Frame{}, 0, fmt.Errorf("%w: magic %02x%02x", ErrBadFrame, b[0], b[1])
	}
	if b[2] != frameVersion {
		return Frame{}, 0, fmt.Errorf("%w: version %d", ErrBadFrame, b[2])
	}
	runLen := int(b[4])
	if runLen == 0 {
		return Frame{}, 0, fmt.Errorf("%w: empty run id", ErrBadFrame)
	}
	off := headerLen + runLen
	if len(b) < off+20 {
		return Frame{}, 0, ErrShortFrame
	}
	session := binary.LittleEndian.Uint64(b[off:])
	seq := binary.LittleEndian.Uint64(b[off+8:])
	payLen := int(binary.LittleEndian.Uint32(b[off+16:]))
	if payLen > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d", ErrBadFrame, payLen)
	}
	total := off + 20 + payLen + 4
	if len(b) < total {
		return Frame{}, 0, ErrShortFrame
	}
	want := binary.LittleEndian.Uint32(b[total-4:])
	if got := crc32.Checksum(b[:total-4], crcTable); got != want {
		return Frame{}, 0, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return Frame{
		Run:     string(b[headerLen : headerLen+runLen]),
		Session: session,
		Seq:     seq,
		Kind:    PayloadKind(b[3]),
		Payload: b[off+20 : total-4],
	}, total, nil
}
