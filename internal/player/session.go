package player

import (
	"errors"
	"time"

	"bba/internal/abr"
	"bba/internal/buffer"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// Session is the playback engine in resumable, reusable form: the complete
// state of one streaming session between chunk requests. The scalar Run
// loop and the batch kernel advance the very same Step function, which is
// what makes batch-mode campaign reports byte-identical to scalar ones —
// there is exactly one implementation of the per-chunk arithmetic.
//
// A zero Session is ready for Start. Starting again after a session ends
// reuses every retained allocation — the Result, its record storage, the
// buffer and the trace cursor — so a long-lived Session streaming many
// sessions back to back allocates nothing in steady state beyond what the
// configured algorithm itself allocates. The Result returned by Result is
// owned by the Session and overwritten by the next Start; callers that
// keep it across sessions must copy what they need first.
//
// A Session is not safe for concurrent use; batch lanes each own one.
type Session struct {
	// Per-session configuration, captured by Start.
	alg    abr.Algorithm
	s      abr.Stream
	v      time.Duration
	ladder media.Ladder
	bufMax time.Duration
	watch  time.Duration
	skip   bool
	n      int

	// Reused storage: buffer, cursor and result live inside the Session
	// so per-lane state can sit in flat arrays with no per-session
	// allocation.
	buf  buffer.Buffer
	link trace.Cursor
	res  *Result

	// The session clock and the per-chunk loop state.
	k         int
	now       time.Duration
	prevIdx   int
	lastTP    units.BitRate
	lastDl    time.Duration
	lastBytes int64

	seeks      []Seek
	justSought bool

	// Telemetry state; only touched when obs != nil, keeping the nil
	// path identical to the uninstrumented engine.
	obs           telemetry.Observer
	stallBase     time.Duration // buf.StallTime() when the open rebuffer began
	lastReservoir time.Duration
	reporter      abr.ReservoirReporter

	// Fault state; only consulted when inj != nil.
	inj FaultInjector
	rp  RetryPolicy

	finished bool
}

// Start (re)initializes the session from cfg. A Session that already ran
// keeps its arena storage; only the logical state resets.
func (ss *Session) Start(cfg Config) error {
	if cfg.Algorithm == nil {
		return errors.New("player: nil algorithm")
	}
	if cfg.Trace == nil {
		return errors.New("player: nil trace")
	}
	bufMax := cfg.BufferMax
	if bufMax <= 0 {
		bufMax = buffer.DefaultMax
	}
	ss.alg = cfg.Algorithm
	ss.s = cfg.Stream
	ss.v = ss.s.ChunkDuration()
	ss.ladder = ss.s.Ladder()
	ss.bufMax = bufMax
	ss.watch = cfg.WatchLimit
	ss.skip = cfg.SkipChunkRecords
	ss.n = ss.s.NumChunks()
	if ss.skip && len(ss.ladder) > 256 {
		return errors.New("player: SkipChunkRecords supports ladders of at most 256 rungs")
	}

	ss.buf.Reset(bufMax)
	if cfg.ResumeThreshold != 0 {
		ss.buf.SetResume(cfg.ResumeThreshold)
	}
	// The session clock only moves forward, so one trace cursor serves the
	// whole session: each download resumes the segment walk where the last
	// one finished instead of re-searching the trace.
	ss.link.Bind(cfg.Trace)

	if ss.res == nil {
		ss.res = &Result{}
	}
	ss.res.reset(ss.alg.Name())
	if hint := chunkCapacity(ss.s, ss.v, cfg.WatchLimit); ss.skip {
		if cap(ss.res.rateIdx) < hint {
			ss.res.rateIdx = make([]uint8, 0, hint)
		}
		for _, r := range ss.ladder {
			ss.res.ladderKbps = append(ss.res.ladderKbps, r.Kilobits())
		}
	} else if cap(ss.res.Chunks) < hint {
		ss.res.Chunks = make([]ChunkRecord, 0, hint)
	}

	ss.k = 0
	ss.now = 0
	ss.prevIdx = -1
	ss.lastTP = 0
	ss.lastDl = 0
	ss.lastBytes = 0
	ss.seeks = cfg.Seeks
	ss.justSought = false
	ss.finished = false

	ss.obs = cfg.Observer
	ss.stallBase = 0
	ss.lastReservoir = -1
	ss.reporter = nil
	if ss.obs != nil {
		ss.reporter, _ = ss.alg.(abr.ReservoirReporter)
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionStart, Chunk: -1, RateIndex: -1,
			PrevRateIndex: -1, Label: ss.res.Algorithm,
		})
	}

	ss.inj = cfg.Injector
	if ss.inj != nil {
		ss.rp = cfg.Retry.withDefaults()
	}
	return nil
}

// Done reports whether the session has finished (or failed).
func (ss *Session) Done() bool { return ss.finished }

// Result returns the session's outcome. It is complete once Step has
// reported done; the Session retains ownership and the next Start
// overwrites it.
func (ss *Session) Result() *Result { return ss.res }

// faultAdvance advances the session clock through a failed attempt or
// backoff: the buffer keeps draining, and a drain-to-empty is a real
// rebuffer with the same telemetry as one during a download.
func (ss *Session) faultAdvance(d time.Duration, chunk int) {
	if d <= 0 {
		return
	}
	preLevel, preStall, preRebuf := ss.buf.Level(), ss.buf.StallTime(), ss.buf.Rebuffers()
	ss.buf.Advance(d)
	ss.now += d
	if ss.obs != nil && ss.buf.Rebuffers() > preRebuf {
		ss.stallBase = preStall
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.RebufferStart, At: ss.now - d + preLevel,
			Chunk: chunk, RateIndex: -1, PrevRateIndex: -1,
		})
	}
}

// Step advances the session by one chunk request — one iteration of the
// engine loop. It returns done == true once the session has played out
// (Result is then complete), and a non-nil error on engine failure, after
// which the session is terminal.
func (ss *Session) Step() (bool, error) {
	if ss.finished {
		return true, nil
	}
	k := ss.k
	// Execute a pending seek once enough video has been delivered.
	if len(ss.seeks) > 0 && ss.buf.Played() >= ss.seeks[0].AfterPlayed {
		target := ss.seeks[0].ToChunk
		ss.seeks = ss.seeks[1:]
		if target >= 0 && target < ss.n {
			ss.buf.Flush()
			if sa, ok := ss.alg.(abr.SeekAware); ok {
				sa.Seeked()
			}
			ss.res.Seeks = append(ss.res.Seeks, SeekRecord{At: ss.now, ToChunk: target})
			k = target
			ss.justSought = true
			if ss.obs != nil {
				ss.obs.OnEvent(telemetry.Event{
					Kind: telemetry.Seek, At: ss.now, Chunk: target,
					RateIndex: -1, PrevRateIndex: -1, Played: ss.buf.Played(),
				})
			}
		}
	}
	// Stop requesting once the buffer already holds everything the
	// viewer will watch — unless a seek is still pending, which will
	// discard that buffer.
	if len(ss.seeks) == 0 && ss.watch > 0 && ss.buf.Played()+ss.buf.Level() >= ss.watch {
		ss.finish()
		return true, nil
	}

	// ON-OFF: wait for space before the next request.
	if !ss.buf.HasSpaceFor(ss.v) {
		wait := ss.buf.TimeUntilSpaceFor(ss.v)
		ss.buf.Advance(wait)
		ss.now += wait
	}

	st := abr.State{
		Now:            ss.now,
		Buffer:         ss.buf.Level(),
		BufferMax:      ss.bufMax,
		PrevIndex:      ss.prevIdx,
		NextChunk:      k,
		LastThroughput: ss.lastTP,
		LastDownload:   ss.lastDl,
		LastChunkBytes: ss.lastBytes,
	}
	idx := ss.ladder.Clamp(ss.alg.Next(st, ss.s))
	bytes := ss.s.ChunkSize(idx, k)
	if ss.obs != nil {
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.BufferSample, At: ss.now, Chunk: k,
			RateIndex: -1, PrevRateIndex: -1,
			Buffer: ss.buf.Level(), Played: ss.buf.Played(),
		})
		if ss.reporter != nil {
			if r, p, ok := ss.reporter.LastReservoir(); ok && r != ss.lastReservoir {
				ss.lastReservoir = r
				ss.obs.OnEvent(telemetry.Event{
					Kind: telemetry.ReservoirUpdate, At: ss.now, Chunk: k,
					RateIndex: -1, PrevRateIndex: -1,
					Reservoir: r, Protection: p, Buffer: ss.buf.Level(),
				})
			}
		}
		if ss.prevIdx >= 0 && idx != ss.prevIdx {
			ss.obs.OnEvent(telemetry.Event{
				Kind: telemetry.RateSwitch, At: ss.now, Chunk: k,
				RateIndex: idx, PrevRateIndex: ss.prevIdx,
				Rate: ss.ladder[idx], Buffer: ss.buf.Level(),
			})
		}
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.ChunkRequest, At: ss.now, Chunk: k,
			RateIndex: idx, PrevRateIndex: -1,
			Rate: ss.ladder[idx], Bytes: bytes, Buffer: ss.buf.Level(),
		})
	}

	if ss.inj != nil {
		idx, bytes = ss.faultLoop(k, idx, bytes)
	}

	dl, ok := ss.link.DownloadTime(ss.now, bytes)
	if !ok {
		// Permanent outage: playback drains whatever is buffered
		// and freezes forever.
		if k == 0 {
			ss.finished = true
			return true, ErrNoProgress
		}
		ss.res.Incomplete = true
		ss.res.Rebuffers++
		if ss.obs != nil {
			ss.obs.OnEvent(telemetry.Event{
				Kind: telemetry.RebufferStart, At: ss.now + ss.buf.Level(),
				Chunk: k, RateIndex: -1, PrevRateIndex: -1,
				Label: "outage",
			})
		}
		ss.finish()
		return true, nil
	}

	var preLevel, preStall time.Duration
	var preRebuf int
	if ss.obs != nil {
		preLevel, preStall, preRebuf = ss.buf.Level(), ss.buf.StallTime(), ss.buf.Rebuffers()
	}
	ss.buf.Advance(dl)
	ss.now += dl
	if ss.obs != nil && ss.buf.Rebuffers() > preRebuf {
		// The stall began the instant the buffer drained mid-download.
		ss.stallBase = preStall
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.RebufferStart, At: ss.now - dl + preLevel,
			Chunk: k, RateIndex: -1, PrevRateIndex: -1,
		})
	}
	if k == 0 {
		ss.res.JoinDelay = ss.now
	}
	if ss.justSought {
		ss.res.Seeks[len(ss.res.Seeks)-1].JoinDelay = dl
		ss.justSought = false
	}
	stalled := ss.buf.Started() && !ss.buf.Playing()
	// Overflow is impossible here because of the ON-OFF wait; an
	// error would indicate an engine bug, so surface it loudly.
	if err := ss.buf.AddChunk(ss.v); err != nil {
		ss.finished = true
		return true, err
	}

	if ss.prevIdx >= 0 && idx != ss.prevIdx {
		ss.res.Switches++
	}
	ss.lastTP = units.Throughput(bytes, dl)
	ss.lastDl = dl
	ss.lastBytes = bytes
	if ss.skip {
		// Compact recording: the rate index alone reproduces every
		// rate-derived metric; the Start-time boundary counters stand in
		// for the per-chunk Start fields (chunk starts are monotone).
		start := ss.now - dl
		if start < time.Minute {
			ss.res.startupChunks++
		}
		if start < 2*time.Minute {
			ss.res.steadySkip++
		}
		ss.res.rateIdx = append(ss.res.rateIdx, uint8(idx))
	} else {
		ss.res.Chunks = append(ss.res.Chunks, ChunkRecord{
			Index:       k,
			RateIndex:   idx,
			Rate:        ss.ladder[idx],
			Bytes:       bytes,
			Start:       ss.now - dl,
			Download:    dl,
			Throughput:  ss.lastTP,
			BufferAfter: ss.buf.Level(),
		})
	}
	ss.prevIdx = idx
	if ss.obs != nil {
		if stalled && ss.buf.Playing() {
			ss.obs.OnEvent(telemetry.Event{
				Kind: telemetry.RebufferEnd, At: ss.now, Chunk: k,
				RateIndex: -1, PrevRateIndex: -1,
				Duration: ss.buf.StallTime() - ss.stallBase, Buffer: ss.buf.Level(),
			})
		}
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.ChunkComplete, At: ss.now, Chunk: k,
			RateIndex: idx, PrevRateIndex: -1,
			Rate: ss.ladder[idx], Bytes: bytes, Duration: dl,
			Throughput: ss.lastTP, Buffer: ss.buf.Level(), Played: ss.buf.Played(),
		})
	}

	ss.k = k + 1
	if ss.k >= ss.n {
		ss.finish()
		return true, nil
	}
	return false, nil
}

// faultLoop is the resilience loop: each attempt pays any active latency
// spike, may fail to an injected fault (costing its virtual delay plus a
// deterministic backoff), and after Budget failures at the chosen rate the
// session degrades to the lowest rung with a shrunken request rather than
// aborting. The loop always terminates: every failed attempt advances the
// clock by at least the backoff, so a finite episode is always outlived.
func (ss *Session) faultLoop(k, idx int, bytes int64) (int, int64) {
	attempt, budgetUsed := 0, 0
	degraded := false
	for {
		ss.faultAdvance(ss.inj.RequestLatency(ss.now), k)
		label, cost, failed := ss.inj.ChunkFault(ss.now, k, attempt)
		if !failed {
			return idx, bytes
		}
		ss.res.Faults++
		if ss.obs != nil {
			ss.obs.OnEvent(telemetry.Event{
				Kind: telemetry.FaultInject, At: ss.now, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1,
				Duration: cost, Label: label,
			})
		}
		attempt++
		budgetUsed++
		backoff := faults.Backoff(ss.rp.BackoffBase, ss.rp.BackoffCap, uint64(ss.rp.Seed), k, attempt)
		ss.faultAdvance(cost+backoff, k)
		ss.res.Retries++
		if ss.obs != nil {
			ss.obs.OnEvent(telemetry.Event{
				Kind: telemetry.ChunkRetry, At: ss.now, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1, Duration: backoff,
			})
		}
		if budgetUsed >= ss.rp.Budget && !degraded && idx > 0 {
			degraded = true
			budgetUsed = 0
			ss.res.Degradations++
			prevReq := idx
			idx = 0
			bytes = ss.s.ChunkSize(0, k)
			if ss.obs != nil {
				ss.obs.OnEvent(telemetry.Event{
					Kind: telemetry.Degrade, At: ss.now, Chunk: k,
					RateIndex: 0, PrevRateIndex: prevReq,
					Rate: ss.ladder[0], Bytes: bytes, Buffer: ss.buf.Level(),
				})
				ss.obs.OnEvent(telemetry.Event{
					Kind: telemetry.ChunkRequest, At: ss.now, Chunk: k,
					RateIndex: 0, PrevRateIndex: -1,
					Rate: ss.ladder[0], Bytes: bytes, Buffer: ss.buf.Level(),
				})
			}
		}
	}
}

// finish plays out the tail of the buffer (up to the watch limit). For an
// incomplete session this is the video the viewer still sees before the
// permanent freeze. With no further downloads coming, a pending stall ends
// now rather than waiting for the resume threshold.
func (ss *Session) finish() {
	res := ss.res
	if ss.obs != nil && !res.Incomplete && ss.buf.Started() && !ss.buf.Playing() {
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.RebufferEnd, At: ss.now, Chunk: -1,
			RateIndex: -1, PrevRateIndex: -1,
			Duration: ss.buf.StallTime() - ss.stallBase, Buffer: ss.buf.Level(),
		})
	}
	ss.buf.Resume()
	remaining := ss.buf.Level()
	if ss.watch > 0 {
		if left := ss.watch - ss.buf.Played(); left < remaining {
			remaining = left
		}
	}
	if remaining > 0 {
		ss.buf.Advance(remaining)
		ss.now += remaining
	}

	res.Played = ss.buf.Played()
	res.Rebuffers += ss.buf.Rebuffers()
	res.StallTime += ss.buf.StallTime()
	res.End = ss.now
	if ss.obs != nil {
		ss.obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionEnd, At: res.End, Chunk: res.ChunkCount(),
			RateIndex: -1, PrevRateIndex: -1,
			Duration: res.StallTime, Played: res.Played, Label: res.Algorithm,
		})
	}
	ss.finished = true
}
