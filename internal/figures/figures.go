// Package figures regenerates every figure of the paper's evaluation.
// Each generator returns a Figure — named series over a labelled axis plus
// computed notes comparing the reproduction against the paper's reported
// shape — and is wired to a benchmark in the repository root and to the
// abtest command.
//
// The A/B figures (7–9, 14–15, 17–20, 22–24) all derive from one weekend-
// scale experiment over the same paired population; the experiment runs
// once per scale and is cached, exactly as the paper's figures all read
// from the same deployment weekend.
package figures

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"bba/internal/abtest"
	"bba/internal/metrics"
)

// Scale selects the population size of the cached A/B experiment.
type Scale int

const (
	// Quick runs a reduced weekend (2 days × 80 sessions/window): a few
	// seconds, adequate for smoke checks.
	Quick Scale = iota
	// Full runs the reference weekend (3 days × 160 sessions/window)
	// used for EXPERIMENTS.md.
	Full
)

// ExperimentSeed fixes the reference experiment; change it to resample the
// population.
const ExperimentSeed = 2014

// Point is one X-labelled sample of a series.
type Point struct {
	X string
	Y float64
}

// Series is a named line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced table/plot: the series the paper's figure shows,
// plus notes stating the shape comparison.
type Figure struct {
	ID     string // e.g. "fig07b"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// WriteTable renders the figure as an aligned text table followed by its
// notes.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		fmt.Fprintf(w, "%-22s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%16s", truncate(s.Name, 15))
		}
		fmt.Fprintln(w)
		for i := range longestSeries(f.Series).Points {
			fmt.Fprintf(w, "%-22s", f.Series[seriesWithPoint(f.Series, i)].Points[i].X)
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, "%16.3f", s.Points[i].Y)
				} else {
					fmt.Fprintf(w, "%16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "(Y axis: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func longestSeries(ss []Series) Series {
	best := ss[0]
	for _, s := range ss[1:] {
		if len(s.Points) > len(best.Points) {
			best = s
		}
	}
	return best
}

func seriesWithPoint(ss []Series, i int) int {
	for j, s := range ss {
		if i < len(s.Points) {
			return j
		}
	}
	return 0
}

// expFlight is the single-flight slot for one scale's weekend experiment:
// the first caller runs it, concurrent callers block on the same run, and
// every later caller reads the cached result.
type expFlight struct {
	once sync.Once
	out  *abtest.Outcome
	err  error
}

var (
	expMu      sync.Mutex
	expFlights = map[Scale]*expFlight{}
)

// ExperimentOutcome returns the cached weekend A/B experiment at the given
// scale, running it on first use.
func ExperimentOutcome(scale Scale) (*abtest.Outcome, error) {
	return ExperimentOutcomeContext(context.Background(), scale)
}

// ExperimentOutcomeContext is ExperimentOutcome with cancellation. The
// experiment runs at most once per scale (single-flight): concurrent
// callers — the parallel figure generators — share one run, and the
// context of whichever caller starts the flight governs it. A run that
// failed (including one canceled mid-flight) is not cached, so a later
// caller retries.
func ExperimentOutcomeContext(ctx context.Context, scale Scale) (*abtest.Outcome, error) {
	expMu.Lock()
	f, ok := expFlights[scale]
	if !ok {
		f = &expFlight{}
		expFlights[scale] = f
	}
	expMu.Unlock()
	f.once.Do(func() {
		cfg := abtest.Config{Seed: ExperimentSeed, Days: 2, SessionsPerWindow: 80}
		if scale == Full {
			cfg.Days = 3
			cfg.SessionsPerWindow = 160
		}
		f.out, f.err = abtest.RunContext(ctx, cfg)
		if f.err != nil {
			// Drop the poisoned flight so the next caller can retry.
			expMu.Lock()
			if expFlights[scale] == f {
				delete(expFlights, scale)
			}
			expMu.Unlock()
		}
	})
	return f.out, f.err
}

// ExperimentStats returns the execution stats of the cached weekend
// experiment at a scale, and whether that experiment has completed. It
// never triggers a run.
func ExperimentStats(scale Scale) (abtest.RunStats, bool) {
	expMu.Lock()
	f, ok := expFlights[scale]
	expMu.Unlock()
	if !ok || f.out == nil {
		return abtest.RunStats{}, false
	}
	return f.out.Stats, true
}

// Generated pairs a registry entry with its produced figure (or error).
type Generated struct {
	Entry Entry
	Fig   *Figure
	Err   error
}

// GenerateAll produces every registered figure at the given scale, fanning
// the generators out across cores. The shared weekend experiment is kicked
// off immediately and computed once via single-flight, so the A/B figures
// all join one run while the single-session figures generate alongside it;
// full regeneration speeds up roughly by core count. Results come back in
// registry (paper) order.
func GenerateAll(ctx context.Context, scale Scale) []Generated {
	entries := All()
	out := make([]Generated, len(entries))
	var wg sync.WaitGroup
	// Start the shared experiment at once rather than when the first A/B
	// generator happens to be scheduled.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = ExperimentOutcomeContext(ctx, scale)
	}()
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				out[i] = Generated{Entry: entries[i], Err: err}
				return
			}
			fig, err := entries[i].Gen(scale)
			out[i] = Generated{Entry: entries[i], Fig: fig, Err: err}
		}(i)
	}
	wg.Wait()
	return out
}

// windowPoints converts a per-window series into labelled points.
func windowPoints(ys []float64) []Point {
	pts := make([]Point, len(ys))
	for i, y := range ys {
		pts[i] = Point{X: metrics.WindowLabel(i), Y: y}
	}
	return pts
}

// peakAvg averages a per-window metric over the paper's peak windows,
// weighting by each window's play-hours.
func peakAvg(ws []metrics.Window, f func(metrics.Window) float64) float64 {
	var sum, hours float64
	for _, w := range ws {
		if !metrics.PeakWindows()[w.Index] {
			continue
		}
		sum += f(w) * w.PlayHours
		hours += w.PlayHours
	}
	if hours == 0 {
		return 0
	}
	return sum / hours
}

// offPeakAvg is peakAvg over the off-peak windows.
func offPeakAvg(ws []metrics.Window, f func(metrics.Window) float64) float64 {
	var sum, hours float64
	for _, w := range ws {
		if !metrics.OffPeakWindows()[w.Index] {
			continue
		}
		sum += f(w) * w.PlayHours
		hours += w.PlayHours
	}
	if hours == 0 {
		return 0
	}
	return sum / hours
}
