// Package simclock is a minimal discrete-event scheduler: a virtual clock
// and a time-ordered event queue. The single-session player advances time
// analytically and does not need it; it exists for simulations where
// multiple actors interact — most importantly the shared-bottleneck link of
// internal/sharedlink, where one player's download completion changes every
// other player's download rate.
package simclock

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	At time.Duration
	Fn func()

	index int // heap bookkeeping
	seq   int // FIFO tiebreak for simultaneous events
}

// Clock is a virtual clock with an event queue. The zero value is ready to
// use and starts at time zero. Clock is not safe for concurrent use: a
// simulation is single-threaded by design.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   int
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Schedule enqueues fn to run at absolute virtual time at. Events scheduled
// in the past run immediately on the next Step (at the current time).
// It returns the event, which can be passed to Cancel.
func (c *Clock) Schedule(at time.Duration, fn func()) *Event {
	if at < c.now {
		at = c.now
	}
	c.seq++
	ev := &Event{At: at, Fn: fn, seq: c.seq}
	heap.Push(&c.queue, ev)
	return ev
}

// After schedules fn after a delay from the current time.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	return c.Schedule(c.now+d, fn)
}

// Cancel removes a pending event; cancelling an already-fired or cancelled
// event is a no-op.
func (c *Clock) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(c.queue) || c.queue[ev.index] != ev {
		return
	}
	heap.Remove(&c.queue, ev.index)
}

// Step runs the next pending event, advancing the clock to its time. It
// reports whether an event ran.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	ev := heap.Pop(&c.queue).(*Event)
	c.now = ev.At
	ev.Fn()
	return true
}

// Run steps until the queue is empty or the clock passes deadline (0 means
// no deadline). It returns the number of events executed.
func (c *Clock) Run(deadline time.Duration) int {
	n := 0
	for len(c.queue) > 0 {
		if deadline > 0 && c.queue[0].At > deadline {
			c.now = deadline
			return n
		}
		c.Step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// eventQueue is a min-heap ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
