package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startCoord serves a coordinator over an in-process HTTP server.
func startCoord(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// TestE2ESingleWorker pins the base fleet contract: coordinator + one
// worker over real HTTP produces the exact bytes a local single-process
// run of the same seed produces — on either engine.
func TestE2ESingleWorker(t *testing.T) {
	spec := testSpec(96) // 12 shards
	want := localReport(t, spec)
	for _, batch := range []bool{false, true} {
		name := "scalar"
		if batch {
			name = "batch"
		}
		t.Run(name, func(t *testing.T) {
			c, srv := startCoord(t, Config{Spec: spec, LeaseShards: 3})
			stats, err := RunWorker(context.Background(), WorkerConfig{
				URL:         srv.URL,
				Name:        "solo",
				Parallelism: 2,
				Batch:       batch,
				Poll:        5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Engine != name {
				t.Errorf("worker engine %q, want %q", stats.Engine, name)
			}
			if stats.ShardsRun != 12 || stats.SessionsRun != 96 {
				t.Errorf("worker ran %d shards / %d sessions, want 12 / 96", stats.ShardsRun, stats.SessionsRun)
			}
			if stats.Elapsed <= 0 || stats.SessionsPerSecond() <= 0 {
				t.Errorf("worker stats carry no wall-clock: elapsed %v, %.0f sessions/s", stats.Elapsed, stats.SessionsPerSecond())
			}
			select {
			case <-c.Done():
			default:
				t.Fatal("coordinator not complete after worker exit")
			}
			client := &Client{URL: srv.URL, Worker: "solo"}
			got, err := client.Report(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s fleet report differs from local run", name)
			}
		})
	}
}

// TestE2EWorkerKilledMidCampaign pins the churn contract: four workers,
// one dies mid-lease (BeforeShard failure injection), the survivors
// reclaim its shards via expiry or stealing, and the report is still
// byte-identical to the local run with no double-counted shards.
func TestE2EWorkerKilledMidCampaign(t *testing.T) {
	spec := testSpec(96) // 12 shards
	want := localReport(t, spec)
	c, srv := startCoord(t, Config{
		Spec:        spec,
		LeaseShards: 2,
		LeaseTTL:    200 * time.Millisecond,
	})

	killed := errors.New("worker killed by test")
	var fatal atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		cfg := WorkerConfig{
			URL:         srv.URL,
			Name:        fmt.Sprintf("w%d", i),
			Parallelism: 1,
			Poll:        5 * time.Millisecond,
		}
		if i == 0 {
			// w0 dies before executing its first leased shard: the lease
			// stays open, its heartbeats stop, and the shards must come
			// back through expiry or work-stealing.
			cfg.BeforeShard = func(int) error { fatal.Store(true); return killed }
		}
		wg.Add(1)
		go func(i int, cfg WorkerConfig) {
			defer wg.Done()
			_, errs[i] = RunWorker(context.Background(), cfg)
		}(i, cfg)
	}
	wg.Wait()

	if !fatal.Load() {
		t.Fatal("failure injection never fired — w0 acquired no lease")
	}
	if !errors.Is(errs[0], killed) {
		t.Errorf("killed worker returned %v, want the injected error", errs[0])
	}
	for i := 1; i < 4; i++ {
		if errs[i] != nil {
			t.Errorf("surviving worker w%d: %v", i, errs[i])
		}
	}

	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator not complete after survivors exited")
	}
	s := c.Stats()
	if s.Shards != 12 {
		t.Errorf("coordinator folded %d shards, want exactly 12", s.Shards)
	}
	if s.LeasesExpired == 0 && s.LeasesStolen == 0 {
		t.Error("dead worker's shards were reclaimed neither by expiry nor stealing")
	}
	got, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("fleet report after worker death differs from local run")
	}
}

// TestE2EEndpoints pins the daemon surface: /report is 409 until the
// campaign completes, /healthz always answers, and /metrics exposes the
// coordinator counters in Prometheus text form.
func TestE2EEndpoints(t *testing.T) {
	spec := testSpec(16) // 2 shards
	c, srv := startCoord(t, Config{Spec: spec, LeaseShards: 8})

	if resp, err := http.Get(srv.URL + "/report"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("/report before completion: %s, want 409", resp.Status)
		}
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
			t.Errorf("/healthz: %s %q", resp.Status, body)
		}
	}

	if _, err := RunWorker(context.Background(), WorkerConfig{
		URL: srv.URL, Name: "w", Parallelism: 1, Poll: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	<-c.Done()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"bba_coord_workers_joined_total 1",
		"bba_coord_shards_completed_total 2",
		"bba_coord_shards_done 2",
		"# TYPE bba_coord_leases_granted_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if resp, err := http.Get(srv.URL + "/report"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/report after completion: %s, want 200", resp.Status)
		}
	}
}
