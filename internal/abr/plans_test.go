package abr

import (
	"math/rand"
	"testing"
	"time"

	"bba/internal/media"
)

func planStream(t *testing.T, seed int64, chunks int) Stream {
	t.Helper()
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: chunks}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(v, 0)
}

// TestTitlePlanMatchesSessionScan pins the shared-plan contract: every
// table entry equals the per-session deficit scan exactly — not
// approximately — for the default window and a non-default one.
func TestTitlePlanMatchesSessionScan(t *testing.T) {
	s := planStream(t, 7, 700)
	for _, window := range []time.Duration{0, DefaultReservoirWindow, 200 * time.Second} {
		tp := NewTitlePlan(s, window)
		p := newReservoirPlan(s)
		for k := 0; k < s.NumChunks(); k++ {
			if got, want := tp.Reservoir(k), p.reservoir(k, window); got != want {
				t.Fatalf("window %v chunk %d: plan %v, scan %v", window, k, got, want)
			}
		}
		// Out-of-range decisions get the empty-scan value.
		if got, want := tp.Reservoir(s.NumChunks()), clampReservoir(0); got != want {
			t.Errorf("out-of-range reservoir %v, want %v", got, want)
		}
	}
}

// TestPlanConsumerDecisionsIdentical runs BBA-1, BBA-2 and BBA-Others
// with and without a shared PlanCache through identical decision
// sequences and requires identical rate choices.
func TestPlanConsumerDecisionsIdentical(t *testing.T) {
	s := planStream(t, 11, 600)
	promoted := NewStream(s.Video(), s.Ladder()[2])
	cache := NewPlanCache()
	builders := map[string]func() Algorithm{
		"BBA-1":      func() Algorithm { return NewBBA1() },
		"BBA-2":      func() Algorithm { return NewBBA2() },
		"BBA-Others": func() Algorithm { return NewBBAOthers() },
	}
	for name, build := range builders {
		for _, stream := range []Stream{s, promoted} {
			plain := build()
			shared := build()
			shared.(PlanConsumer).UsePlans(cache)

			rng := rand.New(rand.NewSource(42))
			buf := time.Duration(0)
			prevPlain, prevShared := -1, -1
			for k := 0; k < stream.NumChunks(); k++ {
				st := State{
					Now:       time.Duration(k) * stream.ChunkDuration(),
					Buffer:    buf,
					BufferMax: 240 * time.Second,
					NextChunk: k,
				}
				st.PrevIndex = prevPlain
				a := plain.Next(st, stream)
				st.PrevIndex = prevShared
				b := shared.Next(st, stream)
				if a != b {
					t.Fatalf("%s chunk %d: plain chose %d, shared chose %d", name, k, a, b)
				}
				prevPlain, prevShared = a, b
				// A plausible, reproducible buffer walk.
				buf += time.Duration(rng.Int63n(int64(6 * time.Second)))
				if buf > 220*time.Second {
					buf = 40 * time.Second
				}
			}

			ra, pa, oka := plain.(ReservoirReporter).LastReservoir()
			rb, pb, okb := shared.(ReservoirReporter).LastReservoir()
			if ra != rb || pa != pb || oka != okb {
				t.Errorf("%s: reservoir report (%v,%v,%v) vs (%v,%v,%v)", name, ra, pa, oka, rb, pb, okb)
			}
		}
	}
}

// TestPlanCacheReuses checks the cache keys: same (title, R_min, window)
// returns the same plan; a promoted R_min or different window does not.
func TestPlanCacheReuses(t *testing.T) {
	s := planStream(t, 3, 300)
	cache := NewPlanCache()
	a := cache.TitlePlan(s, 0)
	if b := cache.TitlePlan(s, DefaultReservoirWindow); a != b {
		t.Error("window 0 and default window missed the cache")
	}
	if b := cache.TitlePlan(s, 0); a != b {
		t.Error("repeat lookup built a new plan")
	}
	promoted := NewStream(s.Video(), s.Ladder()[1])
	if b := cache.TitlePlan(promoted, 0); a == b {
		t.Error("promoted R_min shares the base plan")
	}
	if b := cache.TitlePlan(s, 100*time.Second); a == b {
		t.Error("different window shares the plan")
	}
	other := planStream(t, 4, 300)
	if b := cache.TitlePlan(other, 0); a == b {
		t.Error("different title shares the plan")
	}
}
