package player

import (
	"reflect"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

func faultedConfig(t *testing.T, sched *faults.Schedule, seed int64) Config {
	t.Helper()
	return Config{
		Algorithm: abr.NewBBA0(),
		Stream:    cbrStream(t, 150),
		Trace:     trace.Constant(8*units.Mbps, time.Hour),
		Injector:  faults.NewSessionInjector(sched, seed),
		Retry:     RetryPolicy{Seed: seed},
	}
}

func TestInjectorRetriesAndRecovers(t *testing.T) {
	sched := faults.MustSchedule([]faults.Fault{
		{Kind: faults.ServerError, Start: 30 * time.Second, Duration: 20 * time.Second},
	})
	res, err := Run(faultedConfig(t, sched, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 || res.Retries == 0 {
		t.Fatalf("session saw %d faults, %d retries; want both > 0 during a 20s 5xx burst", res.Faults, res.Retries)
	}
	if res.Incomplete {
		t.Fatal("session aborted instead of riding out the episode")
	}
	if res.Played == 0 {
		t.Fatal("nothing played")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	sched := faults.MustSchedule([]faults.Fault{
		{Kind: faults.ServerError, Start: 20 * time.Second, Duration: 30 * time.Second},
		{Kind: faults.StallBody, Start: 90 * time.Second, Duration: 15 * time.Second},
		{Kind: faults.LatencySpike, Start: 150 * time.Second, Duration: 30 * time.Second, Latency: time.Second},
	})
	a, err := Run(faultedConfig(t, sched, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultedConfig(t, sched, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault configs produced different results")
	}
	c, err := Run(faultedConfig(t, sched, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Faults == c.Faults && a.Retries == c.Retries && reflect.DeepEqual(a.Chunks, c.Chunks) {
		t.Fatal("different injector seeds produced identical sessions")
	}
}

func TestInjectorDegradesToRmin(t *testing.T) {
	// A long, dense failure episode: the retry budget at the chosen rate
	// runs out and the session must drop to the bottom rung rather than
	// abort.
	sched := faults.MustSchedule([]faults.Fault{
		{Kind: faults.StallBody, Start: 20 * time.Second, Duration: 3 * time.Minute},
	})
	var events []telemetry.Event
	cfg := faultedConfig(t, sched, 3)
	cap := &telemetry.Capture{}
	cfg.Observer = cap
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events = cap.Events
	if res.Degradations == 0 {
		t.Fatalf("no degradation over a 3-minute stall episode (retries %d)", res.Retries)
	}
	if res.Incomplete {
		t.Fatal("session aborted despite graceful degradation")
	}
	var sawDegrade, sawFault, sawRetry bool
	for _, e := range events {
		switch e.Kind {
		case telemetry.Degrade:
			sawDegrade = true
			if e.RateIndex != 0 {
				t.Errorf("degrade to rate index %d, want 0 (R_min)", e.RateIndex)
			}
		case telemetry.FaultInject:
			sawFault = true
			if e.Label != "stall_body" {
				t.Errorf("fault label %q, want stall_body", e.Label)
			}
		case telemetry.ChunkRetry:
			sawRetry = true
		}
	}
	if !sawDegrade || !sawFault || !sawRetry {
		t.Fatalf("telemetry missing fault events: degrade=%v fault=%v retry=%v", sawDegrade, sawFault, sawRetry)
	}
}

func TestInjectorLatencySpikeSlowsSession(t *testing.T) {
	sched := faults.MustSchedule([]faults.Fault{
		{Kind: faults.LatencySpike, Start: 0, Duration: 5 * time.Minute, Latency: 2 * time.Second},
	})
	clean, err := Run(Config{
		Algorithm: abr.NewBBA0(), Stream: cbrStream(t, 60),
		Trace: trace.Constant(8*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Algorithm: abr.NewBBA0(), Stream: cbrStream(t, 60),
		Trace:    trace.Constant(8*units.Mbps, time.Hour),
		Injector: faults.NewSessionInjector(sched, 1),
	}
	spiked, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spiked.JoinDelay <= clean.JoinDelay {
		t.Errorf("spiked join delay %v not above clean %v", spiked.JoinDelay, clean.JoinDelay)
	}
	if spiked.Faults != 0 || spiked.Retries != 0 {
		t.Errorf("latency spikes alone should not count as faults (faults %d retries %d)", spiked.Faults, spiked.Retries)
	}
}

func TestNilInjectorUnchanged(t *testing.T) {
	mk := func() Config {
		return Config{
			Algorithm: abr.NewBBA1(), Stream: cbrStream(t, 80),
			Trace: trace.Constant(5*units.Mbps, time.Hour),
		}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	// An injector with an empty schedule must be observationally identical
	// to no injector at all.
	cfg := mk()
	cfg.Injector = faults.NewSessionInjector(nil, 0)
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("empty-schedule injector changed the session")
	}
}
