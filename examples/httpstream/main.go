// HTTP streaming end-to-end: start a chunk server on the loopback, stream
// from it with BBA-2 through an emulated 3 Mb/s downstream link whose
// capacity collapses mid-session, and watch the algorithm ride it out.
//
//	go run ./examples/httpstream
//
// This exercises the real network path — TCP, HTTP requests, measured
// chunk downloads — rather than the virtual-time simulator, so it runs in
// real time (about 40 seconds).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"bba/internal/abr"
	"bba/internal/dash"
	"bba/internal/media"
	"bba/internal/netem"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	// A short-chunk title keeps the real-time demo brisk: 1-second
	// chunks, 90 of them.
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "httpstream-demo",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Second,
		NumChunks:     90,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}

	server, err := dash.NewServer(video)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server)
	defer ts.Close()
	fmt.Println("chunk server listening on", ts.URL)

	// Downstream link: 6 Mb/s, collapsing to 700 kb/s from t=15s to
	// t=30s, then recovering.
	link := trace.MustNew([]trace.Segment{
		{Duration: 15 * time.Second, Rate: 6 * units.Mbps},
		{Duration: 15 * time.Second, Rate: 700 * units.Kbps},
		{Duration: time.Hour, Rate: 6 * units.Mbps},
	})
	httpc := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(c, netem.NewShaper(link)), nil
		},
	}}

	res, err := dash.Stream(context.Background(), dash.ClientConfig{
		BaseURL:    ts.URL,
		HTTPClient: httpc,
		Algorithm:  abr.NewBBA2(),
		WatchLimit: 40 * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplayed %v with %d rebuffers (%.1fs frozen), average rate %.0f kb/s, %d switches\n",
		res.Played.Round(time.Second), res.Rebuffers, res.StallTime.Seconds(),
		res.AvgRateKbps(), res.Switches)
	fmt.Println("note how the rate steps down through the collapse and climbs back after recovery")
}
