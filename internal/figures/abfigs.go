package figures

import (
	"fmt"

	"bba/internal/metrics"
	"bba/internal/stats"
)

// rebufferFigure builds the Figure 7/14/19/24 family: absolute rebuffers
// per playhour per two-hour window for the named groups, plus the
// normalized-to-Control series of the figure's (b) panel, with peak-window
// comparison notes.
func rebufferFigure(scale Scale, id, title string, groups []string, paperNote string) (*Figure, error) {
	out, err := ExperimentOutcome(scale)
	if err != nil {
		return nil, err
	}
	control := out.Windows["Control"]
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "window",
		YLabel: "rebuffers per playhour (absolute + normalized-to-Control)",
	}
	for _, g := range append([]string{"Control"}, groups...) {
		ws, ok := out.Windows[g]
		if !ok {
			return nil, fmt.Errorf("figures: group %q missing from experiment", g)
		}
		ys := make([]float64, len(ws))
		for i, w := range ws {
			ys[i] = w.RebuffersPerPlayhour
		}
		fig.Series = append(fig.Series, Series{Name: g, Points: windowPoints(ys)})
	}
	for _, g := range groups {
		norm := metrics.NormalizeRebuffers(out.Windows[g], control)
		fig.Series = append(fig.Series, Series{Name: g + "/Ctl", Points: windowPoints(norm)})
	}
	ctrlPeak := peakAvg(control, func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
	ctrlSamples := out.RebufferSamples("Control", metrics.PeakWindows())
	for _, g := range groups {
		gPeak := peakAvg(out.Windows[g], func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
		if ctrlPeak <= 0 {
			continue
		}
		note := fmt.Sprintf("%s peak rebuffer rate = %.3f/h vs Control %.3f/h: a %.0f%% reduction",
			g, gPeak, ctrlPeak, 100*(1-gPeak/ctrlPeak))
		gSamples := out.RebufferSamples(g, metrics.PeakWindows())
		if lo, hi, err := stats.BootstrapRatioCI(gSamples, ctrlSamples, 1000, 0.9, ExperimentSeed); err == nil {
			note += fmt.Sprintf(" (90%% bootstrap CI on the ratio: %.2f–%.2f)", lo, hi)
		}
		fig.Notes = append(fig.Notes, note)
	}
	// Section 4.2's headline quantification: the gap between the Control
	// and the Rmin Always bound is the share of rebuffers "caused by poor
	// choice of video rate".
	if boundWs, ok := out.Windows["Rmin Always"]; ok && ctrlPeak > 0 {
		bound := peakAvg(boundWs, func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"unnecessary-rebuffer share at peak (Control vs bound): %.0f%% (paper §4.2: 20–30%%)",
			100*(1-bound/ctrlPeak)))
	}
	fig.Notes = append(fig.Notes, paperNote)
	return fig, nil
}

// rateFigure builds the Figure 8/15/17/23 family: per-window average video
// rate per group plus the Control-minus-group delta the paper plots.
func rateFigure(scale Scale, id, title string, groups []string, paperNote string) (*Figure, error) {
	out, err := ExperimentOutcome(scale)
	if err != nil {
		return nil, err
	}
	control := out.Windows["Control"]
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "window",
		YLabel: "average video rate (kb/s) and Control − group delta",
	}
	for _, g := range append([]string{"Control"}, groups...) {
		ws := out.Windows[g]
		ys := make([]float64, len(ws))
		for i, w := range ws {
			ys[i] = w.AvgRateKbps
		}
		fig.Series = append(fig.Series, Series{Name: g, Points: windowPoints(ys)})
	}
	for _, g := range groups {
		delta := metrics.RateDeltaKbps(control, out.Windows[g])
		fig.Series = append(fig.Series, Series{Name: "Ctl−" + g, Points: windowPoints(delta)})
	}
	for _, g := range groups {
		dPeak := peakAvg(control, func(w metrics.Window) float64 { return w.AvgRateKbps }) -
			peakAvg(out.Windows[g], func(w metrics.Window) float64 { return w.AvgRateKbps })
		dOff := offPeakAvg(control, func(w metrics.Window) float64 { return w.AvgRateKbps }) -
			offPeakAvg(out.Windows[g], func(w metrics.Window) float64 { return w.AvgRateKbps })
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"Control − %s: %+.0f kb/s at peak, %+.0f kb/s off-peak", g, dPeak, dOff))
	}
	fig.Notes = append(fig.Notes, paperNote)
	return fig, nil
}

// switchFigure builds the Figure 9/20/22 family: switch rates normalized to
// Control per window.
func switchFigure(scale Scale, id, title string, groups []string, paperNote string) (*Figure, error) {
	out, err := ExperimentOutcome(scale)
	if err != nil {
		return nil, err
	}
	control := out.Windows["Control"]
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "window",
		YLabel: "switch rate normalized to Control (1.0 = Control)",
	}
	for _, g := range groups {
		norm := metrics.NormalizeSwitches(out.Windows[g], control)
		fig.Series = append(fig.Series, Series{Name: g + "/Ctl", Points: windowPoints(norm)})
		peakRatio := peakAvg(out.Windows[g], func(w metrics.Window) float64 { return w.SwitchesPerPlayhour }) /
			peakAvg(control, func(w metrics.Window) float64 { return w.SwitchesPerPlayhour })
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s switch rate = %.2f× Control at peak", g, peakRatio))
	}
	fig.Notes = append(fig.Notes, paperNote)
	return fig, nil
}

// Fig07RebufferRateBBA0 reproduces Figure 7: Control vs Rmin Always vs
// BBA-0 rebuffer rates across the day.
func Fig07RebufferRateBBA0(scale Scale) (*Figure, error) {
	return rebufferFigure(scale, "fig07",
		"Rebuffers per playhour: Control, Rmin Always, BBA-0",
		[]string{"Rmin Always", "BBA-0"},
		"paper: BBA-0 and Rmin Always always below Control; BBA-0 10–30% below Control at peak and ≈ the bound off-peak")
}

// Fig08VideoRateBBA0 reproduces Figure 8: the Control-minus-BBA-0 video
// rate difference.
func Fig08VideoRateBBA0(scale Scale) (*Figure, error) {
	return rateFigure(scale, "fig08",
		"Video rate: Control vs BBA-0",
		[]string{"BBA-0"},
		"paper: BBA-0 roughly 100 kb/s below Control at peak, 175 kb/s off-peak (fixed 90 s reservoir + slow startup)")
}

// Fig09SwitchRateBBA0 reproduces Figure 9: BBA-0's switch rate normalized
// to Control.
func Fig09SwitchRateBBA0(scale Scale) (*Figure, error) {
	return switchFigure(scale, "fig09",
		"Video switching rate: BBA-0 vs Control",
		[]string{"BBA-0"},
		"paper: BBA-0 cuts the switch rate by ≈60% at peak, ≈50% off-peak")
}

// Fig14RebufferRateBBA1 reproduces Figure 14: BBA-1 against Control and the
// lower bound.
func Fig14RebufferRateBBA1(scale Scale) (*Figure, error) {
	return rebufferFigure(scale, "fig14",
		"Rebuffers per playhour: Control, Rmin Always, BBA-1",
		[]string{"Rmin Always", "BBA-0", "BBA-1"},
		"paper: BBA-1 comes close to the optimal line, performs better than BBA-0, and improves 20–28% over Control at peak")
}

// Fig15VideoRateBBA1 reproduces Figure 15: BBA-1's video rate against
// Control and BBA-0.
func Fig15VideoRateBBA1(scale Scale) (*Figure, error) {
	return rateFigure(scale, "fig15",
		"Video rate: Control vs BBA-0 vs BBA-1",
		[]string{"BBA-0", "BBA-1"},
		"paper: BBA-1 gains 40–70 kb/s over BBA-0 but stays 50–120 kb/s below Control (startup still map-bound)")
}

// Fig17VideoRateBBA2 reproduces Figure 17: BBA-2's overall video rate
// against Control.
func Fig17VideoRateBBA2(scale Scale) (*Figure, error) {
	return rateFigure(scale, "fig17",
		"Video rate: Control vs BBA-1 vs BBA-2",
		[]string{"BBA-1", "BBA-2"},
		"paper: with the startup ramp, BBA-2's average rate is almost indistinguishable from Control")
}

// Fig18SteadyStateRate reproduces Figure 18: steady-state (first two
// minutes excluded) video rate, where BBA-2 beats Control.
func Fig18SteadyStateRate(scale Scale) (*Figure, error) {
	out, err := ExperimentOutcome(scale)
	if err != nil {
		return nil, err
	}
	control := out.Windows["Control"]
	fig := &Figure{
		ID:     "fig18",
		Title:  "Steady-state video rate (sessions after their first two minutes)",
		XLabel: "window",
		YLabel: "steady-state video rate (kb/s) and BBA-2 − Control delta",
	}
	for _, g := range []string{"Control", "BBA-2"} {
		ws := out.Windows[g]
		ys := make([]float64, len(ws))
		for i, w := range ws {
			ys[i] = w.SteadyRateKbps
		}
		fig.Series = append(fig.Series, Series{Name: g, Points: windowPoints(ys)})
	}
	delta := metrics.SteadyRateDeltaKbps(control, out.Windows["BBA-2"])
	for i := range delta {
		delta[i] = -delta[i] // plot BBA-2 − Control, the paper's direction
	}
	fig.Series = append(fig.Series, Series{Name: "BBA2−Ctl", Points: windowPoints(delta)})
	dPeak := peakAvg(out.Windows["BBA-2"], func(w metrics.Window) float64 { return w.SteadyRateKbps }) -
		peakAvg(control, func(w metrics.Window) float64 { return w.SteadyRateKbps })
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("BBA-2 − Control steady-state rate at peak: %+.0f kb/s", dPeak),
		"paper: excluding the first two minutes, BBA-2's rate is mostly higher than Control — the buffer-based approach better utilizes capacity in steady state")
	return fig, nil
}

// Fig19RebufferRateBBA2 reproduces Figure 19.
func Fig19RebufferRateBBA2(scale Scale) (*Figure, error) {
	return rebufferFigure(scale, "fig19",
		"Rebuffers per playhour: Control, BBA-1, BBA-2",
		[]string{"Rmin Always", "BBA-1", "BBA-2"},
		"paper: BBA-2 rebuffers slightly more than BBA-1 (it enters the risky area during startup) yet keeps a 10–20% improvement over Control at peak")
}

// Fig20SwitchRateChunkMap reproduces Figure 20: the chunk map makes BBA-1
// and BBA-2 switch more often than Control.
func Fig20SwitchRateChunkMap(scale Scale) (*Figure, error) {
	return switchFigure(scale, "fig20",
		"Video switching rate: BBA-1/BBA-2 vs Control",
		[]string{"BBA-1", "BBA-2"},
		"paper: after moving to the chunk map, BBA-1 and BBA-2 switch much more often than Control")
}

// Fig22SwitchRateBBAOthers reproduces Figure 22: lookahead smoothing plus
// the right-shift-only reservoir bring the switch rate back to Control's.
func Fig22SwitchRateBBAOthers(scale Scale) (*Figure, error) {
	return switchFigure(scale, "fig22",
		"Video switching rate: BBA-Others vs Control",
		[]string{"BBA-1", "BBA-Others"},
		"paper: BBA-Others is almost indistinguishable from Control — sometimes higher, sometimes lower")
}

// Fig23VideoRateBBAOthers reproduces Figure 23.
func Fig23VideoRateBBAOthers(scale Scale) (*Figure, error) {
	return rateFigure(scale, "fig23",
		"Video rate: Control vs BBA-2 vs BBA-Others",
		[]string{"BBA-2", "BBA-Others"},
		"paper: BBA-Others matches Control's rate at peak and gives up 20–30 kb/s off-peak relative to BBA-2 (up-switch smoothing is conservative)")
}

// Fig24RebufferRateBBAOthers reproduces Figure 24.
func Fig24RebufferRateBBAOthers(scale Scale) (*Figure, error) {
	return rebufferFigure(scale, "fig24",
		"Rebuffers per playhour: Control, Rmin Always, BBA-Others",
		[]string{"Rmin Always", "BBA-Others"},
		"paper: BBA-Others reduces the rebuffer rate by 20–30% against Control")
}

// Sec4Significance reproduces the paper's footnote significance tests: the
// hypothesis that a buffer-based group and Rmin Always share the same
// off-peak rebuffer distribution is not rejected at the 95% level.
func Sec4Significance(scale Scale) (*Figure, error) {
	out, err := ExperimentOutcome(scale)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "sec4",
		Title:  "Off-peak rebuffer-rate significance vs the Rmin Always bound (Welch t-test)",
		XLabel: "comparison",
		YLabel: "two-sided p-value",
	}
	s := Series{Name: "p-value"}
	for _, g := range []string{"BBA-0", "BBA-1", "BBA-2", "BBA-Others", "Control"} {
		res, err := out.SignificanceRebuffers(g, "Rmin Always", metrics.OffPeakWindows())
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: g + " vs bound", Y: res.P})
		verdict := "not rejected"
		if res.P < 0.05 {
			verdict = "REJECTED"
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s vs Rmin Always off-peak: p = %.2f (same-distribution hypothesis %s at 95%%)", g, res.P, verdict))
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		"paper footnotes 4–5: p = 0.25 (BBA-0) and p = 0.74 (BBA-1) — off-peak the buffer-based algorithms are statistically at the bound")
	return fig, nil
}
