package archive

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"bba/internal/telemetry"
)

// Block format (all integers little-endian):
//
//	magic   [4]byte  "BBAC"
//	version uint8    1
//	pages   ...      each page is payload bytes + uint32 CRC-32C(payload)
//	footer  JSON     locates the pages and summarizes the block
//	fcrc    uint32   CRC-32C over the footer JSON
//	flen    uint32   footer JSON length
//	magic   [4]byte  "BBAE"
//
// Pages, in file order:
//
//	kind, session, label   dictionary columns: uvarint entry count, each
//	                       entry uvarint length + bytes, then one uvarint
//	                       dictionary index per row
//	<int columns>          one page per telemetry.IntColumns entry, one
//	                       varint per row: zigzag(delta) for near-monotone
//	                       columns (at_ns, chunk), zigzag(value) otherwise
//	raw                    rows whose journal line was not canonical
//	                       ParseJSONL output, stored verbatim so export
//	                       stays byte-lossless: uvarint count, then per
//	                       entry uvarint row index, uvarint length, bytes
//
// The footer carries the block key — run, row count, [min,max] at_ns
// window — plus the kind names and session groups present, so readers
// prune whole blocks from a 12-byte tail read and one footer parse without
// touching any column page.
const (
	blockVersion = 1
	// blockTailLen is fcrc + flen + end magic.
	blockTailLen = 4 + 4 + 4
	// maxFooterLen bounds what a decoder will allocate for a footer, so a
	// corrupt length field cannot demand unbounded memory.
	maxFooterLen = 16 << 20
)

var (
	blockMagic    = []byte("BBAC")
	blockEndMagic = []byte("BBAE")
	blockCRCTable = crc32.MakeTable(crc32.Castagnoli)

	// ErrBadBlock reports a structurally invalid or corrupt block file.
	ErrBadBlock = errors.New("archive: bad block")
)

// pageInfo locates one page's payload inside the block file.
type pageInfo struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
}

// footer is the block's index, serialized as JSON at the tail.
type footer struct {
	Version int        `json:"version"`
	Run     string     `json:"run"`
	Rows    int        `json:"rows"`
	MinAtNS int64      `json:"min_at_ns"`
	MaxAtNS int64      `json:"max_at_ns"`
	Kinds   []string   `json:"kinds"`
	Groups  []string   `json:"groups"`
	Raws    int        `json:"raws"`
	Pages   []pageInfo `json:"pages"`
}

// zigzag maps signed to unsigned so small-magnitude values of either sign
// stay short varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// dictBuilder interns strings into first-appearance dictionary order.
type dictBuilder struct {
	index   map[string]uint64
	entries []string
	rows    []uint64
}

func newDictBuilder() *dictBuilder {
	return &dictBuilder{index: make(map[string]uint64)}
}

func (d *dictBuilder) add(s string) {
	idx, ok := d.index[s]
	if !ok {
		idx = uint64(len(d.entries))
		d.index[s] = idx
		d.entries = append(d.entries, s)
	}
	d.rows = append(d.rows, idx)
}

func (d *dictBuilder) page(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.entries)))
	for _, e := range d.entries {
		dst = binary.AppendUvarint(dst, uint64(len(e)))
		dst = append(dst, e...)
	}
	for _, r := range d.rows {
		dst = binary.AppendUvarint(dst, r)
	}
	return dst
}

// rawRow is one non-canonical journal line kept verbatim.
type rawRow struct {
	row  int
	line []byte
}

// looseEvent mirrors the journal's field names for the lenient fallback
// parse of non-canonical lines: the line is preserved verbatim for export,
// but whatever fields it does carry still land in the columns so scans and
// rollups see it.
type looseEvent struct {
	Kind          string `json:"kind"`
	Session       string `json:"session"`
	AtNS          int64  `json:"at_ns"`
	Chunk         int64  `json:"chunk"`
	RateIndex     int64  `json:"rate_index"`
	PrevRateIndex int64  `json:"prev_rate_index"`
	RateBps       int64  `json:"rate_bps"`
	Bytes         int64  `json:"bytes"`
	DurationNS    int64  `json:"duration_ns"`
	ThroughputBps int64  `json:"throughput_bps"`
	BufferNS      int64  `json:"buffer_ns"`
	PlayedNS      int64  `json:"played_ns"`
	ReservoirNS   int64  `json:"reservoir_ns"`
	ProtectionNS  int64  `json:"protection_ns"`
	Label         string `json:"label"`
}

// unmarshalLoose best-effort parses a journal line into a looseEvent;
// fields the line lacks stay zero.
func unmarshalLoose(line []byte) (looseEvent, error) {
	var le looseEvent
	err := json.Unmarshal(line, &le)
	return le, err
}

// ints returns the integer fields in telemetry.IntColumns order.
func (le *looseEvent) ints() []int64 {
	return []int64{le.AtNS, le.Chunk, le.RateIndex, le.PrevRateIndex,
		le.RateBps, le.Bytes, le.DurationNS, le.ThroughputBps,
		le.BufferNS, le.PlayedNS, le.ReservoirNS, le.ProtectionNS}
}

// encodeBlock renders one immutable block from journal lines in admission
// order. Lines are canonical ParseJSONL output in the common case; any
// other line is parsed leniently for the columns and additionally stored
// verbatim in the raw page, preserving byte-lossless export.
func encodeBlock(run string, lines [][]byte) ([]byte, error) {
	intCols := telemetry.IntColumns()
	kind, session, label := newDictBuilder(), newDictBuilder(), newDictBuilder()
	ints := make([][]int64, len(intCols))
	var raws []rawRow
	var minAt, maxAt int64
	groups := map[string]bool{}

	var scratch []byte
	for row, line := range lines {
		e, ok := telemetry.ParseJSONL(line)
		var kindName string
		if ok {
			// Belt and braces: the columns must reproduce the line exactly,
			// or the row goes to the raw page. ParseJSONL guarantees this,
			// but losslessness is the archive's contract, so it is enforced
			// here, where it is cheap, rather than trusted.
			scratch = telemetry.AppendJSONL(scratch[:0], e)
			if string(scratch) != string(line) {
				ok = false
			}
		}
		if ok {
			kindName = e.Kind.String()
		} else {
			le, _ := unmarshalLoose(line) // best effort; zero values on failure
			kindName = le.Kind
			e = telemetry.Event{Session: le.Session, Label: le.Label}
			for i, v := range le.ints() {
				intCols[i].Set(&e, v)
			}
			raws = append(raws, rawRow{row: row, line: line})
		}
		kind.add(kindName)
		session.add(e.Session)
		label.add(e.Label)
		for i, c := range intCols {
			ints[i] = append(ints[i], c.Get(&e))
		}
		at := int64(e.At)
		if row == 0 || at < minAt {
			minAt = at
		}
		if row == 0 || at > maxAt {
			maxAt = at
		}
		groups[telemetry.GroupOfSession(e.Session)] = true
	}

	ft := footer{
		Version: blockVersion, Run: run, Rows: len(lines),
		MinAtNS: minAt, MaxAtNS: maxAt,
		Kinds: append([]string(nil), kind.entries...),
		Raws:  len(raws),
	}
	for g := range groups {
		ft.Groups = append(ft.Groups, g)
	}
	sort.Strings(ft.Groups)

	buf := append([]byte(nil), blockMagic...)
	buf = append(buf, blockVersion)
	page := func(name string, payload []byte) {
		ft.Pages = append(ft.Pages, pageInfo{Name: name, Off: int64(len(buf)), Len: int64(len(payload))})
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, blockCRCTable))
	}
	var p []byte
	page("kind", kind.page(p[:0]))
	page("session", session.page(p[:0]))
	page("label", label.page(p[:0]))
	for i, c := range intCols {
		p = p[:0]
		var prev int64
		for _, v := range ints[i] {
			if c.Delta {
				p = binary.AppendUvarint(p, zigzag(v-prev))
				prev = v
			} else {
				p = binary.AppendUvarint(p, zigzag(v))
			}
		}
		page(c.Name, p)
	}
	p = binary.AppendUvarint(p[:0], uint64(len(raws)))
	for _, r := range raws {
		p = binary.AppendUvarint(p, uint64(r.row))
		p = binary.AppendUvarint(p, uint64(len(r.line)))
		p = append(p, r.line...)
	}
	page("raw", p)

	ftJSON, err := json.Marshal(ft)
	if err != nil {
		return nil, err
	}
	buf = append(buf, ftJSON...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(ftJSON, blockCRCTable))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ftJSON)))
	buf = append(buf, blockEndMagic...)
	return buf, nil
}

// Block is a decoded immutable columnar block. Pages decode lazily and
// independently: a reader that needs three columns never touches the other
// twelve.
type Block struct {
	data []byte
	ft   footer
}

// DecodeBlock parses a block from its full file contents. It never panics,
// whatever the input: truncation, corruption and adversarial length fields
// all surface as ErrBadBlock (the property FuzzBlockDecode pins).
func DecodeBlock(data []byte) (*Block, error) {
	ft, err := decodeFooter(data)
	if err != nil {
		return nil, err
	}
	return &Block{data: data, ft: ft}, nil
}

// decodeFooter validates the envelope and parses the footer index.
func decodeFooter(data []byte) (footer, error) {
	var ft footer
	if len(data) < len(blockMagic)+1+blockTailLen {
		return ft, fmt.Errorf("%w: %d bytes", ErrBadBlock, len(data))
	}
	if string(data[:4]) != string(blockMagic) {
		return ft, fmt.Errorf("%w: magic %x", ErrBadBlock, data[:4])
	}
	if data[4] != blockVersion {
		return ft, fmt.Errorf("%w: version %d", ErrBadBlock, data[4])
	}
	if string(data[len(data)-4:]) != string(blockEndMagic) {
		return ft, fmt.Errorf("%w: end magic", ErrBadBlock)
	}
	flen := int64(binary.LittleEndian.Uint32(data[len(data)-8:]))
	if flen > maxFooterLen || int64(len(data)-blockTailLen) < flen {
		return ft, fmt.Errorf("%w: footer length %d", ErrBadBlock, flen)
	}
	ftJSON := data[int64(len(data)-blockTailLen)-flen : len(data)-blockTailLen]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-12:])
	if crc32.Checksum(ftJSON, blockCRCTable) != wantCRC {
		return ft, fmt.Errorf("%w: footer checksum", ErrBadBlock)
	}
	if err := json.Unmarshal(ftJSON, &ft); err != nil {
		return ft, fmt.Errorf("%w: footer: %v", ErrBadBlock, err)
	}
	if ft.Version != blockVersion || ft.Rows < 0 || ft.Raws < 0 {
		return ft, fmt.Errorf("%w: footer fields", ErrBadBlock)
	}
	headerLen := int64(len(blockMagic)) + 1
	for _, pg := range ft.Pages {
		// Bounds via subtraction, not pg.Off+pg.Len+4: a crafted footer
		// (valid CRC, huge offsets) can wrap int64 addition and slip an
		// out-of-range page past the check into a Block.page panic.
		if pg.Off < headerLen || pg.Len < 0 || pg.Len > int64(len(data)) ||
			pg.Off > int64(len(data))-4-pg.Len {
			return ft, fmt.Errorf("%w: page %q outside block", ErrBadBlock, pg.Name)
		}
	}
	return ft, nil
}

// Rows returns the number of events in the block.
func (b *Block) Rows() int { return b.ft.Rows }

// Run returns the run the block belongs to.
func (b *Block) Run() string { return b.ft.Run }

// Kinds returns the kind names present, in dictionary order.
func (b *Block) Kinds() []string { return b.ft.Kinds }

// Groups returns the session groups present, sorted.
func (b *Block) Groups() []string { return b.ft.Groups }

// TimeWindow returns the [min, max] at_ns window the block covers.
func (b *Block) TimeWindow() (minNS, maxNS int64) { return b.ft.MinAtNS, b.ft.MaxAtNS }

// page returns the named page's payload after verifying its CRC.
func (b *Block) page(name string) ([]byte, error) {
	for _, pg := range b.ft.Pages {
		if pg.Name != name {
			continue
		}
		payload := b.data[pg.Off : pg.Off+pg.Len]
		want := binary.LittleEndian.Uint32(b.data[pg.Off+pg.Len:])
		if crc32.Checksum(payload, blockCRCTable) != want {
			return nil, fmt.Errorf("%w: page %q checksum", ErrBadBlock, name)
		}
		return payload, nil
	}
	return nil, fmt.Errorf("%w: no page %q", ErrBadBlock, name)
}

// Dict decodes a dictionary column: the interned entries and one entry
// index per row.
func (b *Block) Dict(name string) (entries []string, rows []uint32, err error) {
	p, err := b.page(name)
	if err != nil {
		return nil, nil, err
	}
	n, off := binary.Uvarint(p)
	if off <= 0 || n > uint64(len(p)) {
		return nil, nil, fmt.Errorf("%w: dict %q entry count", ErrBadBlock, name)
	}
	entries = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(p[off:])
		if sz <= 0 || l > uint64(len(p)-off-sz) {
			return nil, nil, fmt.Errorf("%w: dict %q entry", ErrBadBlock, name)
		}
		off += sz
		entries = append(entries, string(p[off:off+int(l)]))
		off += int(l)
	}
	rows = make([]uint32, 0, b.ft.Rows)
	for i := 0; i < b.ft.Rows; i++ {
		v, sz := binary.Uvarint(p[off:])
		if sz <= 0 || v >= uint64(len(entries)) {
			return nil, nil, fmt.Errorf("%w: dict %q row %d", ErrBadBlock, name, i)
		}
		off += sz
		rows = append(rows, uint32(v))
	}
	return entries, rows, nil
}

// Ints decodes an integer column into dst (reused when capacity allows),
// undoing the delta encoding where the column used it.
func (b *Block) Ints(name string, dst []int64) ([]int64, error) {
	var delta bool
	found := false
	for _, c := range telemetry.IntColumns() {
		if c.Name == name {
			delta, found = c.Delta, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: no int column %q", ErrBadBlock, name)
	}
	p, err := b.page(name)
	if err != nil {
		return nil, err
	}
	dst = dst[:0]
	var prev int64
	off := 0
	for i := 0; i < b.ft.Rows; i++ {
		u, sz := binary.Uvarint(p[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: int %q row %d", ErrBadBlock, name, i)
		}
		off += sz
		v := unzigzag(u)
		if delta {
			v += prev
			prev = v
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// Raws returns the verbatim journal lines of non-canonical rows, keyed by
// row index.
func (b *Block) Raws() (map[int][]byte, error) {
	p, err := b.page("raw")
	if err != nil {
		return nil, err
	}
	n, off := binary.Uvarint(p)
	if off <= 0 || n > uint64(len(p)) {
		return nil, fmt.Errorf("%w: raw count", ErrBadBlock)
	}
	raws := make(map[int][]byte, n)
	for i := uint64(0); i < n; i++ {
		row, sz := binary.Uvarint(p[off:])
		if sz <= 0 || row > uint64(b.ft.Rows) {
			return nil, fmt.Errorf("%w: raw row", ErrBadBlock)
		}
		off += sz
		l, sz := binary.Uvarint(p[off:])
		if sz <= 0 || l > uint64(len(p)-off-sz) {
			return nil, fmt.Errorf("%w: raw length", ErrBadBlock)
		}
		off += sz
		raws[int(row)] = p[off : off+int(l)]
		off += int(l)
	}
	return raws, nil
}

// Export writes every row back as journal JSONL in row order: canonical
// rows re-render from their columns, raw rows emit their stored bytes.
// The result is byte-identical to the lines the block was built from.
func (b *Block) Export(w io.Writer) error {
	events, raws, err := b.decodeRows()
	if err != nil {
		return err
	}
	var buf []byte
	for i := range events {
		if raw, ok := raws[i]; ok {
			buf = append(buf[:0], raw...)
		} else {
			buf = telemetry.AppendJSONL(buf[:0], events[i])
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// decodeRows materializes every row of the block — the row-oriented read
// path Scan and Export share. Aggregate deliberately does not use it.
func (b *Block) decodeRows() ([]telemetry.Event, map[int][]byte, error) {
	kindEntries, kindRows, err := b.Dict("kind")
	if err != nil {
		return nil, nil, err
	}
	sessEntries, sessRows, err := b.Dict("session")
	if err != nil {
		return nil, nil, err
	}
	labelEntries, labelRows, err := b.Dict("label")
	if err != nil {
		return nil, nil, err
	}
	kinds := make([]telemetry.Kind, len(kindEntries))
	for i, name := range kindEntries {
		kinds[i], _ = telemetry.ParseKind(name) // unknown names decode as 0
	}
	intCols := telemetry.IntColumns()
	ints := make([][]int64, len(intCols))
	for i, c := range intCols {
		if ints[i], err = b.Ints(c.Name, nil); err != nil {
			return nil, nil, err
		}
	}
	raws, err := b.Raws()
	if err != nil {
		return nil, nil, err
	}
	events := make([]telemetry.Event, b.ft.Rows)
	for i := range events {
		e := &events[i]
		e.Kind = kinds[kindRows[i]]
		e.Session = sessEntries[sessRows[i]]
		e.Label = labelEntries[labelRows[i]]
		for ci, c := range intCols {
			c.Set(e, ints[ci][i])
		}
	}
	return events, raws, nil
}
