package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"bba/internal/dash"
	"bba/internal/media"
	"bba/internal/soak"
)

// LoadReport is the BENCH_load.json schema: the real-socket ramp against
// an in-process origin plus the serving-path micro-benchmarks, with the
// pre-optimization numbers embedded so the before/after of the server
// fix is visible in the file itself.
type LoadReport struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated,omitempty"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	// ServerBaseline is the serving path measured before the render
	// cache landed (manifests, playlists and MPD re-rendered per
	// request, chunk bodies built with fmt appends).
	ServerBaseline []Result `json:"server_baseline"`
	// Server is the same suite measured now.
	Server []Result `json:"server"`
	// Ramp is the concurrent real-socket client ramp: step measurements,
	// the knee, and the largest client count inside the SLO.
	Ramp *soak.LoadResult `json:"ramp"`
}

// preFixServerBaseline is the serving path measured at this PR's start,
// before NewServer began caching the rendered manifest/MPD/playlists and
// serving chunk bodies from a shared filler block: every playlist was
// re-rendered per request (O(chunks) appends) and every chunk body was
// rebuilt through fmt. The ramp against that server knelt on allocation
// churn, not sockets. (go1.22, 120-chunk fixture.)
var preFixServerBaseline = []Result{
	{Name: "ServeChunk", NsPerOp: 40238, BytesPerOp: 33257, AllocsPerOp: 9},
	{Name: "MasterPlaylist", NsPerOp: 4875, BytesPerOp: 4664, AllocsPerOp: 16},
	{Name: "MediaPlaylist", NsPerOp: 51607, BytesPerOp: 5544, AllocsPerOp: 126},
}

// discardResponse throws handler output away: the serving cost alone, no
// recorder buffer growth.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

// loadFixture builds the load-suite title: 60 one-second chunks, the
// smallest rung ~29 KB — request-handling dominated, the regime where
// the concurrency knee lives.
func loadFixture() (*dash.Server, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "load",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Second,
		NumChunks:     60,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	return dash.NewServer(video)
}

// serverSuite re-measures the serving-path micro-benchmarks against the
// same fixture geometry the committed baseline used.
func serverSuite() ([]Result, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "bench",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Second,
		NumChunks:     120,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		path string
	}{
		{"ServeChunk", "/chunk/0/3"},
		{"MasterPlaylist", "/master.m3u8"},
		{"MediaPlaylist", "/playlist/0.m3u8"},
	}
	results := make([]Result, 0, len(cases))
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodGet, c.path, nil)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var w discardResponse
				srv.ServeHTTP(&w, req)
			}
		})
		res := Result{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "bench %-28s %12.0f ns/op %10d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	return results, nil
}

// runLoadSuite is the -load-out entry point: boot an in-process origin
// on a free port, ramp real-socket clients against it (2000 at full
// scale, a CI-sized 200 with -quick), then re-run the serving-path
// micro-benchmarks and write the datapoint.
func runLoadSuite(quick, stamp bool, out string) error {
	srv, err := loadFixture()
	if err != nil {
		return err
	}
	origin, err := dash.StartOrigin("127.0.0.1:0", srv, dash.OriginConfig{
		ShutdownGrace: 2 * time.Second,
	})
	if err != nil {
		return err
	}
	defer origin.Close(context.Background())

	cfg := soak.LoadConfig{
		URL:    origin.URL(),
		Target: 2000,
		Step:   250,
		Dwell:  1500 * time.Millisecond,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if quick {
		cfg.Target, cfg.Step, cfg.Dwell = 200, 50, 400*time.Millisecond
	}
	ramp, err := soak.RunLoad(context.Background(), cfg)
	if err != nil {
		return err
	}
	if ramp.KneeClients > 0 {
		fmt.Fprintf(os.Stderr, "load: knee at %d clients (baseline p95 %.2fms)\n", ramp.KneeClients, ramp.BaselineP95Ms)
	} else {
		fmt.Fprintf(os.Stderr, "load: no knee inside the ramp; %d clients within SLO\n", ramp.MaxClients)
	}

	server, err := serverSuite()
	if err != nil {
		return err
	}
	report := LoadReport{
		Schema:         "bba-load/v1",
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Scale:          map[bool]string{true: "quick", false: "full"}[quick],
		ServerBaseline: preFixServerBaseline,
		Server:         server,
		Ramp:           ramp,
	}
	if stamp {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	return write(report, out)
}
