// Package replay turns a finished session's observations back into a
// capacity trace, enabling the counterfactual question the paper's
// Figure 4 poses: given the network one client actually experienced, what
// would a different algorithm have done?
//
// The reconstruction uses each chunk's measured throughput over its
// download interval and carries the last measurement across the gaps
// between downloads (ON-OFF idle periods observe nothing). Replaying the
// same session's algorithm against its own reconstructed trace reproduces
// its decisions closely; replaying a different algorithm answers the
// what-if.
package replay

import (
	"errors"
	"time"

	"bba/internal/player"
	"bba/internal/trace"
)

// ErrNoObservations is returned for sessions with no completed chunks.
var ErrNoObservations = errors.New("replay: session has no download observations")

// TraceFromResult reconstructs the capacity process a session observed.
func TraceFromResult(res *player.Result) (*trace.Trace, error) {
	if res == nil || len(res.Chunks) == 0 {
		return nil, ErrNoObservations
	}
	var segs []trace.Segment
	cursor := time.Duration(0)
	for _, c := range res.Chunks {
		if c.Download <= 0 || c.Throughput <= 0 {
			continue
		}
		// Idle gap before this download: no observation; carry the
		// upcoming measurement backward (the least-surprising guess —
		// the client chose not to measure, not the network to vanish).
		if c.Start > cursor {
			segs = append(segs, trace.Segment{Duration: c.Start - cursor, Rate: c.Throughput})
			cursor = c.Start
		}
		end := c.Start + c.Download
		if end > cursor {
			segs = append(segs, trace.Segment{Duration: end - cursor, Rate: c.Throughput})
			cursor = end
		}
	}
	if len(segs) == 0 {
		return nil, ErrNoObservations
	}
	return trace.New(segs)
}

// WhatIf replays a session's reconstructed network against another
// algorithm and returns that algorithm's counterfactual result. The cfg's
// Trace field is ignored; everything else (stream, buffer size, watch
// limit) should match the original session's setup.
func WhatIf(original *player.Result, cfg player.Config) (*player.Result, error) {
	tr, err := TraceFromResult(original)
	if err != nil {
		return nil, err
	}
	cfg.Trace = tr
	return player.Run(cfg)
}
