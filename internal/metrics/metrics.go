// Package metrics turns per-session results into the aggregates the
// paper's figures report: rebuffers per playhour, average delivered video
// rate, steady-state rate, and switch rate, grouped into the two-hour GMT
// windows used on every time axis, with across-day variance for error bars
// and normalization against the Control group.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"bba/internal/player"
	"bba/internal/qoe"
	"bba/internal/stats"
)

// WindowsPerDay is the number of two-hour windows the paper's figures bin
// results into.
const WindowsPerDay = 12

// Session is one streaming session's contribution to the aggregates.
type Session struct {
	// Window is the two-hour GMT window (0 = 0:00–2:00 GMT, ...) the
	// session started in.
	Window int
	// Day distinguishes repeated days for error bars.
	Day int

	PlayHours       float64
	Rebuffers       int
	Switches        int
	AvgRateKbps     float64
	SteadyRateKbps  float64 // 0 when the session never reached steady state
	SteadyReached   bool
	StartupRateKbps float64
	// QoE is the session's composite quality-of-experience score under
	// qoe.Default weights.
	QoE float64
	// Faults, Retries and Degradations count fault-injection activity
	// (zero on clean runs).
	Faults       int
	Retries      int
	Degradations int
	Failovers    int
}

// FromResult extracts a Session from a player result.
func FromResult(r *player.Result, window, day int) Session {
	steady := r.SteadyAvgRateKbps()
	return Session{
		Window:          window,
		Day:             day,
		PlayHours:       r.PlayHours(),
		Rebuffers:       r.Rebuffers,
		Switches:        r.Switches,
		AvgRateKbps:     r.AvgRateKbps(),
		SteadyRateKbps:  steady,
		SteadyReached:   steady > 0,
		StartupRateKbps: r.StartupAvgRateKbps(),
		QoE:             qoe.Score(r, qoe.Default()).QoE,
		Faults:          r.Faults,
		Retries:         r.Retries,
		Degradations:    r.Degradations,
		Failovers:       r.Failovers,
	}
}

// Window is a two-hour aggregate of one experiment group.
type Window struct {
	Index    int
	Sessions int

	PlayHours            float64
	RebuffersPerPlayhour float64
	SwitchesPerPlayhour  float64
	AvgRateKbps          float64 // play-hour weighted
	SteadyRateKbps       float64 // play-hour weighted over steady sessions
	StartupRateKbps      float64
	QoEPerPlayhour       float64

	// RebufferRateByDay holds the per-day rebuffer rates behind the
	// paper's error bars; RebufferRateStdDev is their spread.
	RebufferRateByDay  []float64
	RebufferRateStdDev float64
}

// Aggregate bins sessions into two-hour windows. Sessions with invalid
// windows are rejected.
func Aggregate(sessions []Session) ([]Window, error) {
	wa := NewWindowAccum()
	for i, s := range sessions {
		if err := wa.Add(s); err != nil {
			return nil, fmt.Errorf("metrics: session %d: %w", i, err)
		}
	}
	return wa.Windows(), nil
}

// WindowAccum is the incremental form of Aggregate: sessions stream in one
// at a time and the twelve window aggregates fall out at any point, with no
// per-session state retained. Streaming the same sessions in the same order
// produces bit-identical Windows to a batch Aggregate call — the property
// the A/B harness's streaming-aggregation mode relies on. Not safe for
// concurrent use.
type WindowAccum struct {
	accs []windowAcc
}

type windowAcc struct {
	sessions  int
	playHours float64
	rebuffers int
	switches  int
	rateWt    float64 // Σ avgRate·playHours
	steadyWt  float64
	steadyH   float64
	startWt   float64
	startN    int
	qoeSum    float64
	byDay     map[int]*dayAcc
}

// NewWindowAccum returns an empty accumulator covering WindowsPerDay
// windows.
func NewWindowAccum() *WindowAccum {
	wa := &WindowAccum{accs: make([]windowAcc, WindowsPerDay)}
	for i := range wa.accs {
		wa.accs[i].byDay = make(map[int]*dayAcc)
	}
	return wa
}

// Add folds one session into its window. Sessions with invalid windows are
// rejected.
func (wa *WindowAccum) Add(s Session) error {
	if s.Window < 0 || s.Window >= WindowsPerDay {
		return fmt.Errorf("metrics: window %d outside [0,%d)", s.Window, WindowsPerDay)
	}
	a := &wa.accs[s.Window]
	a.sessions++
	a.playHours += s.PlayHours
	a.rebuffers += s.Rebuffers
	a.switches += s.Switches
	a.rateWt += s.AvgRateKbps * s.PlayHours
	if s.SteadyReached {
		a.steadyWt += s.SteadyRateKbps * s.PlayHours
		a.steadyH += s.PlayHours
	}
	if s.StartupRateKbps > 0 {
		a.startWt += s.StartupRateKbps
		a.startN++
	}
	a.qoeSum += s.QoE
	d := a.byDay[s.Day]
	if d == nil {
		d = &dayAcc{}
		a.byDay[s.Day] = d
	}
	d.playHours += s.PlayHours
	d.rebuffers += s.Rebuffers
	return nil
}

// Windows finalizes the current aggregates. The accumulator remains usable;
// later Adds fold into fresh finalizations.
func (wa *WindowAccum) Windows() []Window {
	out := make([]Window, WindowsPerDay)
	for i := range wa.accs {
		a := &wa.accs[i]
		w := Window{Index: i, Sessions: a.sessions, PlayHours: a.playHours}
		if a.playHours > 0 {
			w.RebuffersPerPlayhour = float64(a.rebuffers) / a.playHours
			w.SwitchesPerPlayhour = float64(a.switches) / a.playHours
			w.AvgRateKbps = a.rateWt / a.playHours
			w.QoEPerPlayhour = a.qoeSum / a.playHours
		}
		if a.steadyH > 0 {
			w.SteadyRateKbps = a.steadyWt / a.steadyH
		}
		if a.startN > 0 {
			w.StartupRateKbps = a.startWt / float64(a.startN)
		}
		days := make([]int, 0, len(a.byDay))
		for day := range a.byDay {
			days = append(days, day)
		}
		sort.Ints(days)
		for _, day := range days {
			if d := a.byDay[day]; d.playHours > 0 {
				w.RebufferRateByDay = append(w.RebufferRateByDay, float64(d.rebuffers)/d.playHours)
			}
		}
		w.RebufferRateStdDev = stats.StdDev(w.RebufferRateByDay)
		out[i] = w
	}
	return out
}

type dayAcc struct {
	playHours float64
	rebuffers int
}

// NormalizeRebuffers expresses each window's rebuffer rate as a fraction of
// the control group's rate in the same window (the paper's Figures 7b, 14b,
// 19b, 24b). Windows where the control rate is zero yield 0.
func NormalizeRebuffers(group, control []Window) []float64 {
	out := make([]float64, len(group))
	for i := range group {
		if i < len(control) && control[i].RebuffersPerPlayhour > 0 {
			out[i] = group[i].RebuffersPerPlayhour / control[i].RebuffersPerPlayhour
		}
	}
	return out
}

// NormalizeSwitches expresses switch rates relative to control (Figures 9,
// 20, 22).
func NormalizeSwitches(group, control []Window) []float64 {
	out := make([]float64, len(group))
	for i := range group {
		if i < len(control) && control[i].SwitchesPerPlayhour > 0 {
			out[i] = group[i].SwitchesPerPlayhour / control[i].SwitchesPerPlayhour
		}
	}
	return out
}

// RateDeltaKbps returns per-window control-minus-group average video rate,
// the quantity on the Y axis of Figures 8, 15, 17 and 23.
func RateDeltaKbps(control, group []Window) []float64 {
	out := make([]float64, len(group))
	for i := range group {
		if i < len(control) {
			out[i] = control[i].AvgRateKbps - group[i].AvgRateKbps
		}
	}
	return out
}

// SteadyRateDeltaKbps is RateDeltaKbps on the steady-state rate (Figure 18).
func SteadyRateDeltaKbps(control, group []Window) []float64 {
	out := make([]float64, len(group))
	for i := range group {
		if i < len(control) {
			out[i] = control[i].SteadyRateKbps - group[i].SteadyRateKbps
		}
	}
	return out
}

// WindowLabel renders a window index as its GMT span, e.g. "04-06 GMT".
func WindowLabel(i int) string {
	return fmt.Sprintf("%02d-%02d GMT", i*2, i*2+2)
}

// PeakWindows reports which windows cover the US evening peak the paper
// highlights (8pm–1am EDT = 0:00–5:00 GMT, windows 0, 1 and 2).
func PeakWindows() map[int]bool { return map[int]bool{0: true, 1: true, 2: true} }

// OffPeakWindows reports the "middle-of-night period in the USA just after
// peak viewing (6am–12pm GMT)": windows 3, 4 and 5.
func OffPeakWindows() map[int]bool { return map[int]bool{3: true, 4: true, 5: true} }

// WindowStart returns the GMT start offset of window i within a day.
func WindowStart(i int) time.Duration { return time.Duration(i) * 2 * time.Hour }
