package archive

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bba/internal/telemetry"
)

// QueryHandler serves a Store's query API over HTTP:
//
//	GET /runs   run names and storage stats
//	GET /query  archived events or rollups for one run
//
// /query parameters:
//
//	run       required; the run to query
//	kind      comma-separated kind names (chunk_complete,rebuffer_start,...)
//	session   exact session label
//	group     experiment group (session label suffix)
//	from_ns   inclusive lower bound on the session clock
//	to_ns     inclusive upper bound (0 or absent: unbounded)
//	agg       "1": return the per-group Rollup JSON instead of events
//	limit     cap on streamed events (default 100000; agg ignores it)
//
// Events stream as canonical journal JSONL, one event per line, the same
// bytes bbaship journals locally — downstream tooling needs one parser.
type QueryHandler struct {
	Store *Store
}

// Register mounts the handler's routes on mux.
func (h QueryHandler) Register(mux *http.ServeMux) {
	mux.HandleFunc("/runs", h.handleRuns)
	mux.HandleFunc("/query", h.handleQuery)
}

func (h QueryHandler) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h.Store.Stats())
}

// parseQuery builds the archive Query from request parameters. A non-nil
// error is a client error (400).
func parseQuery(r *http.Request) (Query, error) {
	q := Query{
		Run:     r.FormValue("run"),
		Session: r.FormValue("session"),
		Group:   r.FormValue("group"),
	}
	if q.Run == "" {
		return q, errRunRequired()
	}
	if kinds := r.FormValue("kind"); kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, ok := telemetry.ParseKind(strings.TrimSpace(name))
			if !ok {
				return q, &badParamError{"kind", name}
			}
			q.Kinds = append(q.Kinds, k)
		}
	}
	for _, p := range []struct {
		name string
		dst  *time.Duration
	}{{"from_ns", &q.From}, {"to_ns", &q.To}} {
		if v := r.FormValue(p.name); v != "" {
			ns, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ns < 0 {
				return q, &badParamError{p.name, v}
			}
			*p.dst = time.Duration(ns)
		}
	}
	return q, nil
}

type badParamError struct{ name, value string }

func (e *badParamError) Error() string {
	return "archive: bad query parameter " + e.name + "=" + strconv.Quote(e.value)
}

func (h QueryHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q, err := parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if r.FormValue("agg") == "1" {
		rollup, err := h.Store.Aggregate(q)
		if err != nil {
			h.queryError(w, q.Run, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rollup)
		return
	}
	limit := 100000
	if v := r.FormValue("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, (&badParamError{"limit", v}).Error(), http.StatusBadRequest)
			return
		}
		limit = n
	}
	// Buffer the scan before writing: a scan error after the first byte of
	// a 200 response would corrupt the stream.
	var buf []byte
	var line []byte
	n := 0
	err = h.Store.Scan(q, func(e telemetry.Event) bool {
		line = telemetry.AppendJSONL(line[:0], e)
		buf = append(buf, line...)
		n++
		return n < limit
	})
	if err != nil {
		h.queryError(w, q.Run, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf)
}

// queryError maps a query failure to a status: unknown run is the caller's
// mistake (404), anything else is the store's (500).
func (h QueryHandler) queryError(w http.ResponseWriter, run string, err error) {
	for _, known := range h.Store.Runs() {
		if known == run {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	http.Error(w, err.Error(), http.StatusNotFound)
}
