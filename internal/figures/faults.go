package figures

import (
	"fmt"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/player"
)

// ExperimentConfig returns the weekend experiment's abtest configuration
// at a scale — the exact population ExperimentOutcome runs — so callers
// (cmd/abtest's fault mode) can replay it under modified conditions.
func ExperimentConfig(scale Scale) abtest.Config {
	cfg := abtest.Config{Seed: ExperimentSeed, Days: 2, SessionsPerWindow: 80}
	if scale == Full {
		cfg.Days = 3
		cfg.SessionsPerWindow = 160
	}
	return cfg
}

// OutageRobustness sweeps a single mid-session link blackout from seconds
// to beyond the 240 s player buffer and reports each algorithm's rebuffer
// rate — the §7.1 design argument made quantitative: the buffer the BBA
// family deliberately accrues is outage insurance, so buffer-based
// sessions ride out any outage shorter than their accrued buffer while
// the estimator-driven Control, converging to a thinner buffer, freezes
// first. Past the buffer capacity nobody survives and the curves converge.
func OutageRobustness() (*Figure, error) {
	catalog, err := media.NewCatalog(24, media.DefaultLadder(), ExperimentSeed)
	if err != nil {
		return nil, err
	}
	algs := []struct {
		name string
		mk   func(abtest.User) abr.Algorithm
	}{
		{"Control", func(u abtest.User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{"BBA-0", func(abtest.User) abr.Algorithm { return abr.NewBBA0() }},
		{"BBA-1", func(abtest.User) abr.Algorithm { return abr.NewBBA1() }},
	}
	outages := []time.Duration{
		15 * time.Second, 30 * time.Second, 60 * time.Second,
		120 * time.Second, 180 * time.Second, 300 * time.Second,
	}
	const (
		sessions = 70
		// The blackout hits after the session has had time to accrue
		// buffer but well before the watch limit, so its whole duration
		// lands mid-playback.
		outageAt = 8 * time.Minute
		watch    = 20 * time.Minute
	)

	fig := &Figure{
		ID:     "ext-outage",
		Title:  "Extension (§7.1): rebuffer rate versus outage duration",
		XLabel: "outage duration",
		YLabel: "rebuffers per playhour",
	}
	series := make([]Series, len(algs))
	for ai, a := range algs {
		series[ai] = Series{Name: a.name}
	}
	for _, d := range outages {
		sched := faults.MustSchedule([]faults.Fault{
			{Kind: faults.Blackout, Start: outageAt, Duration: d},
		})
		rebuffers := make([]int, len(algs))
		hours := make([]float64, len(algs))
		// The same drawn users face every outage duration: the sweep is
		// paired along both axes.
		for i := 0; i < sessions; i++ {
			rng := abtest.SessionRNG(ExperimentSeed+37, 0, 0, i)
			u := abtest.DrawUser(abtest.PopulationConfig{}, 0, 0, rng) // peak window
			u.WatchTime = watch
			tr, err := sched.ApplyToTrace(u.Trace)
			if err != nil {
				return nil, err
			}
			stream := abr.NewStream(u.Pick(catalog), u.Rmin)
			for ai, a := range algs {
				res, err := player.Run(player.Config{
					Algorithm:  a.mk(u),
					Stream:     stream,
					Trace:      tr,
					WatchLimit: u.WatchTime,
				})
				if err != nil {
					return nil, err
				}
				rebuffers[ai] += res.Rebuffers
				hours[ai] += res.PlayHours()
			}
		}
		label := fmt.Sprintf("%ds", int(d.Seconds()))
		for ai := range algs {
			y := 0.0
			if hours[ai] > 0 {
				y = float64(rebuffers[ai]) / hours[ai]
			}
			series[ai].Points = append(series[ai].Points, Point{X: label, Y: y})
		}
	}
	fig.Series = series

	// Quantify the headline: how much longer an outage the BBA family
	// absorbs at the Control's rebuffer cost, and where the curves meet.
	last := len(outages) - 1
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("at a 60 s outage: Control %.2f vs BBA-0 %.2f vs BBA-1 %.2f rebuffers/playhour",
			series[0].Points[2].Y, series[1].Points[2].Y, series[2].Points[2].Y),
		fmt.Sprintf("past the %v player buffer (%s outage) every algorithm must freeze: Control %.2f vs BBA-1 %.2f",
			4*time.Minute, series[0].Points[last].X, series[0].Points[last].Y, series[2].Points[last].Y),
		"design claim (§7.1): buffer occupancy is outage insurance — the deliberately accrued buffer rides out any outage shorter than itself, with no estimator in the loop to mispredict through the gap",
		"demo: `go run ./examples/outage` replays one such blackout (plus a 5xx burst and a latency spike) through the same faults.Schedule against four algorithm variants",
	)
	return fig, nil
}
